#include "dsp/music.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/steering.hpp"
#include "util/rng.hpp"

namespace m2ai::dsp {
namespace {

MusicOptions default_options() {
  MusicOptions opts;
  opts.num_antennas = 4;
  opts.effective_separation_m = 0.08;
  opts.wavelength_m = 0.33;
  opts.covariance.diagonal_loading = 1e-9;
  return opts;
}

// Incoherent sources: independent random phase per source per snapshot.
std::vector<std::vector<cdouble>> incoherent_snapshots(
    const std::vector<double>& angles, const std::vector<double>& powers, int n_ant,
    int count, double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<std::complex<double>>> steer;
  for (double th : angles) {
    steer.push_back(rf::steering_vector(th, n_ant, 0.08, 0.33));
  }
  std::vector<std::vector<cdouble>> snaps(static_cast<std::size_t>(count));
  for (auto& snap : snaps) {
    snap.assign(static_cast<std::size_t>(n_ant), cdouble{0.0, 0.0});
    for (std::size_t s = 0; s < angles.size(); ++s) {
      const cdouble amp = std::sqrt(powers[s]) *
                          std::polar(1.0, rng.uniform(0.0, 2.0 * M_PI));
      for (int i = 0; i < n_ant; ++i) {
        snap[static_cast<std::size_t>(i)] += amp * steer[s][static_cast<std::size_t>(i)];
      }
    }
    for (auto& v : snap) v += cdouble{rng.normal(0.0, noise), rng.normal(0.0, noise)};
  }
  return snaps;
}

int argmax(const std::vector<double>& v) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(v.size()); ++i) {
    if (v[static_cast<std::size_t>(i)] > v[static_cast<std::size_t>(best)]) best = i;
  }
  return best;
}

class MusicAngles : public ::testing::TestWithParam<double> {};

// Property: a single source is located within 3 degrees across the usable
// angular range.
TEST_P(MusicAngles, SingleSourceLocated) {
  const double truth = GetParam();
  MusicOptions opts = default_options();
  opts.num_sources = 1;
  MusicEstimator music(opts);
  const auto snaps = incoherent_snapshots({truth}, {1.0}, 4, 64, 0.02,
                                          100 + static_cast<std::uint64_t>(truth));
  const MusicResult r = music.estimate(snaps);
  EXPECT_NEAR(argmax(r.spectrum), truth, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Angles, MusicAngles,
                         ::testing::Values(25.0, 40.0, 60.0, 75.0, 90.0, 105.0,
                                           125.0, 150.0));

TEST(Music, TwoIncoherentSourcesResolved) {
  MusicOptions opts = default_options();
  opts.num_sources = 2;
  MusicEstimator music(opts);
  const auto snaps = incoherent_snapshots({50.0, 115.0}, {1.0, 0.8}, 4, 128, 0.02, 9);
  const MusicResult r = music.estimate(snaps);
  const auto peaks = find_peaks(r.spectrum, 2, 0.01);
  ASSERT_EQ(peaks.size(), 2u);
  const double p0 = std::min(peaks[0], peaks[1]);
  const double p1 = std::max(peaks[0], peaks[1]);
  EXPECT_NEAR(p0, 50.0, 5.0);
  EXPECT_NEAR(p1, 115.0, 5.0);
}

TEST(Music, AutoSourceCountFindsOne) {
  MusicOptions opts = default_options();
  opts.num_sources = -1;
  MusicEstimator music(opts);
  const auto snaps = incoherent_snapshots({80.0}, {1.0}, 4, 64, 0.01, 11);
  const MusicResult r = music.estimate(snaps);
  EXPECT_EQ(r.num_sources, 1);
}

TEST(Music, SpectrumNormalizedToUnitMax) {
  MusicOptions opts = default_options();
  MusicEstimator music(opts);
  const auto snaps = incoherent_snapshots({70.0}, {1.0}, 4, 32, 0.05, 12);
  const MusicResult r = music.estimate(snaps);
  double mx = 0.0;
  for (double v : r.spectrum) {
    EXPECT_GE(v, 0.0);
    mx = std::max(mx, v);
  }
  EXPECT_NEAR(mx, 1.0, 1e-12);
}

TEST(Music, EigenvaluesDescending) {
  MusicEstimator music(default_options());
  const auto snaps = incoherent_snapshots({70.0, 100.0}, {1.0, 0.5}, 4, 64, 0.05, 13);
  const MusicResult r = music.estimate(snaps);
  for (std::size_t k = 1; k < r.eigenvalues.size(); ++k) {
    EXPECT_GE(r.eigenvalues[k - 1], r.eigenvalues[k] - 1e-12);
  }
}

TEST(Music, CovarianceSizeMismatchThrows) {
  MusicEstimator music(default_options());
  EXPECT_THROW(music.estimate_from_covariance(CMatrix(3, 3)), std::invalid_argument);
}

TEST(FindPeaks, OrdersByHeightAndLimitsCount) {
  std::vector<double> spec(180, 0.0);
  spec[30] = 0.5;
  spec[90] = 1.0;
  spec[140] = 0.7;
  const auto peaks = find_peaks(spec, 2, 0.05);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 90);
  EXPECT_EQ(peaks[1], 140);
}

TEST(FindPeaks, MinHeightFilters) {
  std::vector<double> spec(180, 0.0);
  spec[90] = 1.0;
  spec[30] = 0.01;
  const auto peaks = find_peaks(spec, 5, 0.05);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 90);
}

TEST(FindPeaks, EdgesCanPeak) {
  std::vector<double> spec(10, 0.0);
  spec[0] = 1.0;
  spec[9] = 0.8;
  const auto peaks = find_peaks(spec, 3, 0.05);
  EXPECT_EQ(peaks.size(), 2u);
}

TEST(FindPeaks, PlateauReportsSingleMidpointPeak) {
  // Equal-valued maximal run must produce exactly one peak at its midpoint,
  // not one per plateau sample (quantized spectra hit this constantly).
  std::vector<double> spec(20, 0.0);
  for (int i = 8; i <= 12; ++i) spec[i] = 1.0;
  const auto peaks = find_peaks(spec, 5, 0.05);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 10);
}

TEST(FindPeaks, EdgePlateausPeakAtMidpoint) {
  std::vector<double> spec = {1.0, 1.0, 1.0, 0.4, 0.2, 0.2, 0.9, 0.9};
  const auto peaks = find_peaks(spec, 5, 0.05);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 1);  // run [0..2], strongest first
  EXPECT_EQ(peaks[1], 6);  // run [6..7] at the right edge, midpoint (6+7)/2
}

TEST(FindPeaks, RisingStepIsNotAPeak) {
  // A flat shoulder on the way up must not count; only the summit does.
  const std::vector<double> spec = {0.0, 1.0, 1.0, 2.0, 0.0};
  const auto peaks = find_peaks(spec, 5, 0.05);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 3);
}

TEST(FindPeaks, AllFlatSpectrumIsOnePeak) {
  const std::vector<double> flat(11, 0.5);
  const auto peaks = find_peaks(flat, 5, 0.05);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 5);
}

TEST(FindPeaks, NegativeSpectraSkipHeightFilter) {
  // dB-scaled spectra are entirely negative; the relative-height filter
  // (v >= min_height * top) is meaningless there and must be skipped —
  // the old code compared against -1.0 sentinels and dropped everything.
  const std::vector<double> spec = {-10.0, -5.0, -8.0, -3.0, -9.0};
  const auto peaks = find_peaks(spec, 5, 0.05);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 3);
  EXPECT_EQ(peaks[1], 1);
}

TEST(FindPeaks, AllFlatZeroSpectrumHandled) {
  const std::vector<double> flat(8, 0.0);
  const auto peaks = find_peaks(flat, 3, 0.05);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 3);
}

TEST(FindPeaks, EmptyInputAndZeroBudgetReturnNothing) {
  EXPECT_TRUE(find_peaks({}, 3, 0.05).empty());
  const std::vector<double> spec = {0.0, 1.0, 0.0};
  EXPECT_TRUE(find_peaks(spec, 0, 0.05).empty());
}

TEST(SteeringCache, EqualGeometryEstimatorsShareOneTable) {
  const MusicOptions opts = default_options();
  MusicEstimator a(opts);
  MusicEstimator b(opts);
  EXPECT_EQ(a.steering_table().get(), b.steering_table().get());

  MusicOptions other = default_options();
  other.wavelength_m = 0.34;
  MusicEstimator c(other);
  EXPECT_NE(a.steering_table().get(), c.steering_table().get());
}

TEST(SteeringCache, TableMatchesDirectSteeringLoopBitwise) {
  // The cached table replaced a per-estimator rf::steering_vector loop; its
  // entries must be the very same doubles that loop produced.
  const auto table = shared_steering_table(4, 0.08, 0.33, 181);
  ASSERT_EQ(table->size(), 181u);
  for (int deg = 0; deg < 181; ++deg) {
    const auto direct = rf::steering_vector(static_cast<double>(deg), 4, 0.08, 0.33);
    const auto& cached = (*table)[static_cast<std::size_t>(deg)];
    ASSERT_EQ(cached.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_EQ(cached[i].real(), direct[i].real()) << "deg " << deg;
      ASSERT_EQ(cached[i].imag(), direct[i].imag()) << "deg " << deg;
    }
  }
}

TEST(SteeringCache, PseudospectrumBitwiseStableAcrossEstimators) {
  // The pseudospectrum is a pure function of (covariance, steering table):
  // a fresh estimator served from the cache must reproduce the first
  // estimator's spectrum bit for bit.
  MusicOptions opts = default_options();
  opts.num_sources = 2;
  const auto snaps = incoherent_snapshots({50.0, 115.0}, {1.0, 0.8}, 4, 128, 0.02, 9);
  const MusicResult first = MusicEstimator(opts).estimate(snaps);
  const MusicResult second = MusicEstimator(opts).estimate(snaps);
  ASSERT_EQ(first.spectrum.size(), second.spectrum.size());
  for (std::size_t i = 0; i < first.spectrum.size(); ++i) {
    ASSERT_EQ(first.spectrum[i], second.spectrum[i]) << "bin " << i;
  }
}

}  // namespace
}  // namespace m2ai::dsp
