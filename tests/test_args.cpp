#include "util/args.hpp"

#include <gtest/gtest.h>

namespace m2ai::util {
namespace {

Args make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, KeyValuePairs) {
  const Args args = make({"--samples", "40", "--model", "out.bin"});
  EXPECT_TRUE(args.has("samples"));
  EXPECT_EQ(args.get_int("samples", 0), 40);
  EXPECT_EQ(args.get("model", ""), "out.bin");
}

TEST(Args, BooleanFlags) {
  const Args args = make({"--verbose", "--samples", "3"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", "x"), "");
  EXPECT_EQ(args.get_int("samples", 0), 3);
}

TEST(Args, FlagFollowedByFlagIsBoolean) {
  const Args args = make({"--verbose", "--fast"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.has("fast"));
}

TEST(Args, DefaultsWhenMissing) {
  const Args args = make({});
  EXPECT_FALSE(args.has("samples"));
  EXPECT_EQ(args.get_int("samples", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("distance", 4.5), 4.5);
  EXPECT_EQ(args.get("model", "fallback"), "fallback");
}

TEST(Args, Positionals) {
  const Args args = make({"train", "--epochs", "5", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "train");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Args, TypeErrorsThrow) {
  const Args args = make({"--samples", "abc"});
  EXPECT_THROW(args.get_int("samples", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("samples", 0.0), std::invalid_argument);
}

TEST(Args, UnknownFlagDetection) {
  const Args args = make({"--samples", "4", "--typo", "1"});
  EXPECT_THROW(args.require_known({"samples"}), std::invalid_argument);
  EXPECT_NO_THROW(args.require_known({"samples", "typo"}));
}

TEST(Args, DoubleParsing) {
  const Args args = make({"--distance", "3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("distance", 0.0), 3.5);
}

}  // namespace
}  // namespace m2ai::util
