#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace m2ai::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-3.5e2").as_number(), -350.0);
  EXPECT_DOUBLE_EQ(json_parse("0.125").as_number(), 0.125);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = json_parse(
      R"({"spans":[{"name":"music","p50_ms":1.5},{"name":"eig","p50_ms":0.25}],)"
      R"("ok":true,"n":null})");
  const JsonArray& spans = v.at("spans").as_array();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].at("name").as_string(), "music");
  EXPECT_DOUBLE_EQ(spans[1].at("p50_ms").as_number(), 0.25);
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_TRUE(v.at("n").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), JsonError);
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(json_parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 combines and encodes to 4 UTF-8 bytes.
  EXPECT_EQ(json_parse("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");
  // BMP escape: U+00E9 (é) encodes to 2 UTF-8 bytes.
  EXPECT_EQ(json_parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(json_parse(""), JsonError);
  EXPECT_THROW(json_parse("{"), JsonError);
  EXPECT_THROW(json_parse("[1,2"), JsonError);
  EXPECT_THROW(json_parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonError);
  EXPECT_THROW(json_parse("\"bad \\x escape\""), JsonError);
  EXPECT_THROW(json_parse("\"lone \\ud800 surrogate\""), JsonError);
  EXPECT_THROW(json_parse("01"), JsonError);       // leading zero
  EXPECT_THROW(json_parse("1."), JsonError);       // digits after point
  EXPECT_THROW(json_parse("1e"), JsonError);       // digits in exponent
  EXPECT_THROW(json_parse("{} trailing"), JsonError);
  EXPECT_THROW(json_parse("truthy"), JsonError);
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW(json_parse(deep), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const JsonValue v = json_parse("[1]");
  EXPECT_THROW(v.as_object(), JsonError);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.as_number(), JsonError);
  EXPECT_THROW(v.as_bool(), JsonError);
  EXPECT_THROW(json_parse("3").as_array(), JsonError);
}

TEST(Json, ErrorMessagesCarryByteOffsets) {
  try {
    json_parse("{\"a\": !}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace m2ai::util
