// Wire protocol (src/proto):
//   * serializer golden layout — frame bytes, checksum, PC word, EPC fill,
//     CRC-16 against the spec in proto/wire.hpp;
//   * bitwise round trips — single reports, whole sim::Reader streams under
//     every option combination, byte-dribble feeding;
//   * damage taxonomy — truncation, flipped checksum, bad trailer, oversized
//     length, PC/payload disagreement, tag CRC mismatch, garbage resync,
//     non-finite field bits: each rejected into its named counter, never
//     silently (the byte-accounting identity is asserted throughout);
//   * the seeded mutation corpus (proto/fuzz.hpp) at CI scale;
//   * serve integration — wire ingest equals direct ingest, and invalid
//     reports land in AssemblerStats::invalid_dropped.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "proto/fuzz.hpp"
#include "proto/parser.hpp"
#include "proto/wire.hpp"
#include "serve/service.hpp"
#include "sim/activities.hpp"
#include "sim/reader.hpp"
#include "util/rng.hpp"

namespace m2ai::proto {
namespace {

sim::TagReport make_report(std::uint32_t tag_id = 3, int antenna = 1,
                           int channel = 17) {
  sim::TagReport r;
  r.time_sec = 21.06253125;  // not representable in 1 us steps
  r.tag_id = tag_id;
  r.antenna = antenna;
  r.channel = channel;
  // Reader-quantized values: phase on the 2*pi/4096 grid, RSSI on the 0.5 dB
  // grid, Doppler on the 1/16 Hz grid.
  r.phase_rad = steps_to_phase(1234);
  r.rssi_dbm = -61.5;
  r.doppler_hz = -3.1875;
  return r;
}

void expect_bitwise(const sim::TagReport& a, const sim::TagReport& b) {
  EXPECT_EQ(a.time_sec, b.time_sec);
  EXPECT_EQ(a.tag_id, b.tag_id);
  EXPECT_EQ(a.antenna, b.antenna);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.phase_rad, b.phase_rad);
  EXPECT_EQ(a.rssi_dbm, b.rssi_dbm);
  EXPECT_EQ(a.doppler_hz, b.doppler_hz);
}

// bytes_fed == frame_bytes + resync_bytes + truncated_bytes + buffered():
// every byte the parser ever saw is attributed somewhere.
void expect_accounted(const FrameParser& parser) {
  const ParserStats& s = parser.stats();
  EXPECT_EQ(s.bytes_fed, s.frame_bytes + s.resync_bytes + s.truncated_bytes +
                             parser.buffered());
}

// Recompute the additive checksum of a buffer holding exactly one frame —
// used after deliberately patching payload bytes.
void fix_frame_checksum(std::vector<std::uint8_t>& f) {
  const std::size_t len = (static_cast<std::size_t>(f[3]) << 8) | f[4];
  std::uint32_t sum = 0;
  for (std::size_t i = 1; i < 5 + len; ++i) sum += f[i];
  f[5 + len] = static_cast<std::uint8_t>(sum & 0xFF);
}

// ------------------------------------------------------------- primitives

TEST(Wire, Crc16KnownVector) {
  const std::uint8_t check[9] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_gen2(check, 9), 0xD64E);  // CRC-16/GENIBUS check value
}

TEST(Wire, RssiByteMappingRoundTripsHalfDb) {
  for (int b = 0; b <= 255; ++b) {
    const auto byte = static_cast<std::uint8_t>(b);
    const double dbm = rssi_byte_to_dbm(byte);
    EXPECT_EQ(rssi_dbm_to_byte(dbm), byte);
    EXPECT_EQ(dbm, static_cast<double>(b) / 2.0 - 128.0);  // exact in binary
  }
  EXPECT_EQ(rssi_dbm_to_byte(-200.0), 0);  // clamps below
  EXPECT_EQ(rssi_dbm_to_byte(10.0), 255);  // clamps above
}

TEST(Wire, PhaseStepsRoundTripAndBoundaryWrap) {
  for (int k = 0; k < kPhaseSteps; ++k) {
    const auto steps = static_cast<std::uint16_t>(k);
    EXPECT_EQ(phase_to_steps(steps_to_phase(steps)), steps);
  }
  // Step 4096 is exactly 2*pi and must encode as step 0.
  EXPECT_EQ(phase_to_steps(2.0 * M_PI), 0);
  EXPECT_LT(steps_to_phase(4095), 2.0 * M_PI);
}

TEST(Wire, ChecksumAndLayoutGolden) {
  const sim::TagReport r = make_report(/*tag_id=*/0x01020304);
  std::vector<std::uint8_t> f;
  append_report_frame(r, WireOptions{}, f);

  // Full profile, 6-word EPC: payload = 1+2+12+2+1+38 = 56, frame = 63.
  ASSERT_EQ(f.size(), 63u);
  EXPECT_EQ(f[0], kHeader);
  EXPECT_EQ(f[1], kTypeNotification);
  EXPECT_EQ(f[2], kCmdInventory);
  EXPECT_EQ(f[3], 0x00);
  EXPECT_EQ(f[4], 56);
  EXPECT_EQ(f.back(), kTrailer);

  EXPECT_EQ(f[5], rssi_dbm_to_byte(r.rssi_dbm));
  EXPECT_EQ((f[6] << 8) | f[7], pc_for_words(6));  // PC: EPC length 6 words
  // EPC: "M2" fill, tag id big-endian in the last four bytes.
  EXPECT_EQ(f[8], 'M');
  EXPECT_EQ(f[9], '2');
  EXPECT_EQ(f[16], 0x01);
  EXPECT_EQ(f[17], 0x02);
  EXPECT_EQ(f[18], 0x03);
  EXPECT_EQ(f[19], 0x04);
  // Tag CRC covers PC + EPC.
  EXPECT_EQ((f[20] << 8) | f[21], crc16_gen2(f.data() + 6, 14));
  EXPECT_EQ(f[22], kExtLenFull);

  std::uint32_t sum = 0;
  for (std::size_t i = 1; i < f.size() - 2; ++i) sum += f[i];
  EXPECT_EQ(f[f.size() - 2], static_cast<std::uint8_t>(sum & 0xFF));
}

// ------------------------------------------------------------ round trips

TEST(Proto, SingleReportRoundTripsBitwise) {
  const sim::TagReport r = make_report();
  std::vector<std::uint8_t> bytes;
  append_report_frame(r, WireOptions{}, bytes);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  EXPECT_EQ(parser.feed(bytes, out), 1u);
  parser.finish();
  ASSERT_EQ(out.size(), 1u);
  expect_bitwise(r, out[0]);
  EXPECT_EQ(parser.stats().frames, 1u);
  EXPECT_EQ(parser.stats().rejected_frames(), 0u);
  EXPECT_EQ(parser.stats().rejected_records(), 0u);
  expect_accounted(parser);
}

TEST(Proto, CompactProfileReconstructsQuantizedFields) {
  const sim::TagReport r = make_report();
  WireOptions options;
  options.profile = WireProfile::kCompact;
  std::vector<std::uint8_t> bytes;
  append_report_frame(r, options, bytes);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(bytes, out);
  ASSERT_EQ(out.size(), 1u);
  // Quantized fields reconstruct bitwise; time is lossy (1 us steps).
  EXPECT_EQ(out[0].tag_id, r.tag_id);
  EXPECT_EQ(out[0].antenna, r.antenna);
  EXPECT_EQ(out[0].channel, r.channel);
  EXPECT_EQ(out[0].phase_rad, r.phase_rad);
  EXPECT_EQ(out[0].rssi_dbm, r.rssi_dbm);
  EXPECT_EQ(out[0].doppler_hz, r.doppler_hz);
  EXPECT_NEAR(out[0].time_sec, r.time_sec, 1e-6);
  EXPECT_NE(out[0].time_sec, r.time_sec);  // chosen off the 1 us grid
}

TEST(Proto, SimStreamRoundTripsBitwiseEveryScenario) {
  using sim::Scene;
  for (const int activity : {1, 3, 5}) {
    sim::Environment env = sim::Environment::laboratory();
    sim::ArrayGeometry array;
    array.center = sim::Vec3{env.width / 2.0, 0.4, 1.25};
    util::Rng rng(static_cast<std::uint64_t>(100 + activity));
    sim::PlacementOptions placement;
    auto persons = sim::instantiate_activity(activity, 2, env, array.origin2d(),
                                             placement, rng);
    Scene scene(env, std::move(persons), array, 3);
    sim::Reader reader(sim::ReaderConfig{}, 4, 6,
                       util::Rng(static_cast<std::uint64_t>(activity)));
    const std::vector<sim::TagReport> reports = reader.run(scene, 0.0, 1.5);
    ASSERT_FALSE(reports.empty());

    WireOptions variants[3];
    variants[1].records_per_frame = 5;
    variants[1].trailing_extra_bytes = 3;
    variants[2].records_per_frame = 16;
    variants[2].vary_epc_length = true;
    for (const WireOptions& options : variants) {
      const std::vector<std::uint8_t> bytes =
          serialize_stream(reports, options);
      FrameParser parser;
      std::vector<sim::TagReport> out;
      // Serial links do not respect frame boundaries: feed odd-sized chunks.
      for (std::size_t at = 0; at < bytes.size(); at += 17) {
        parser.feed(bytes.data() + at, std::min<std::size_t>(17, bytes.size() - at),
                    out);
      }
      parser.finish();
      ASSERT_EQ(out.size(), reports.size());
      for (std::size_t i = 0; i < reports.size(); ++i) {
        expect_bitwise(reports[i], out[i]);
      }
      EXPECT_EQ(parser.stats().rejected_frames(), 0u);
      EXPECT_EQ(parser.stats().rejected_records(), 0u);
      expect_accounted(parser);
    }
  }
}

TEST(Proto, ByteDribbleOneAtATime) {
  std::vector<sim::TagReport> reports;
  for (std::uint32_t id = 1; id <= 4; ++id) reports.push_back(make_report(id));
  WireOptions options;
  options.records_per_frame = 2;
  const std::vector<std::uint8_t> bytes = serialize_stream(reports, options);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  for (const std::uint8_t b : bytes) parser.feed(&b, 1, out);
  parser.finish();
  ASSERT_EQ(out.size(), reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    expect_bitwise(reports[i], out[i]);
  }
  expect_accounted(parser);
}

TEST(Proto, MultiTagPayloadWithTrailingExtras) {
  std::vector<sim::TagReport> reports;
  for (std::uint32_t id = 1; id <= 3; ++id) reports.push_back(make_report(id));
  WireOptions options;
  options.records_per_frame = 3;
  options.trailing_extra_bytes = 5;
  const std::vector<std::uint8_t> bytes = serialize_stream(reports, options);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(bytes, out);
  parser.finish();
  ASSERT_EQ(out.size(), 3u);  // one frame, three records
  EXPECT_EQ(parser.stats().inventory_frames, 1u);
  EXPECT_EQ(parser.stats().trailing_extra_bytes, 5u);
  EXPECT_EQ(parser.stats().rejected_records(), 0u);
  expect_accounted(parser);
}

TEST(Proto, ErrorFrameCounted) {
  std::vector<std::uint8_t> bytes;
  append_error_frame(kErrInventoryFail, bytes);
  FrameParser parser;
  std::vector<sim::TagReport> out;
  EXPECT_EQ(parser.feed(bytes, out), 0u);
  parser.finish();
  EXPECT_EQ(parser.stats().frames, 1u);
  EXPECT_EQ(parser.stats().error_frames, 1u);
  EXPECT_EQ(parser.stats().last_error_code, kErrInventoryFail);
  expect_accounted(parser);
}

// ------------------------------------------------------- damage taxonomy

TEST(Proto, TruncatedFrameIsDroppedAndCounted) {
  std::vector<std::uint8_t> bytes;
  append_report_frame(make_report(), WireOptions{}, bytes);
  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(bytes.data(), 10, out);  // header + partial payload only
  EXPECT_EQ(parser.buffered(), 10u);
  parser.finish();  // end of stream: the partial frame can never complete
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parser.stats().truncated_bytes, 10u);
  EXPECT_EQ(parser.buffered(), 0u);
  expect_accounted(parser);
}

TEST(Proto, FlippedChecksumByteRejectsAndResyncs) {
  const sim::TagReport r = make_report();
  std::vector<std::uint8_t> corrupt;
  append_report_frame(r, WireOptions{}, corrupt);
  corrupt[corrupt.size() - 2] ^= 0xFF;  // flip the checksum byte

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(corrupt, out);
  // Flush padding guarantees any false header candidate inside the rejected
  // frame fails too (its trailer position lands in zeros), then a pristine
  // frame must be recovered.
  const std::vector<std::uint8_t> zeros(kMaxFrameBytes, 0x00);
  parser.feed(zeros, out);
  std::vector<std::uint8_t> pristine;
  append_report_frame(r, WireOptions{}, pristine);
  parser.feed(pristine, out);
  parser.finish();

  ASSERT_EQ(out.size(), 1u);
  expect_bitwise(r, out[0]);
  EXPECT_GE(parser.stats().bad_checksum, 1u);
  EXPECT_EQ(parser.stats().frames, 1u);
  expect_accounted(parser);
}

TEST(Proto, BadTrailerRejects) {
  std::vector<std::uint8_t> corrupt;
  append_report_frame(make_report(), WireOptions{}, corrupt);
  corrupt.back() = 0x00;

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(corrupt, out);
  parser.finish();
  EXPECT_TRUE(out.empty());
  EXPECT_GE(parser.stats().bad_trailer, 1u);
  EXPECT_EQ(parser.stats().frames, 0u);
  expect_accounted(parser);
}

TEST(Proto, OversizedLengthRejected) {
  // Declared payload length above kMaxPayload can never complete; the parser
  // must reject immediately rather than buffer forever.
  std::vector<std::uint8_t> bytes = {kHeader, kTypeNotification, kCmdInventory,
                                     0xFF,    0xFF,              0x00};
  const std::vector<std::uint8_t> zeros(16, 0x00);
  bytes.insert(bytes.end(), zeros.begin(), zeros.end());
  const sim::TagReport r = make_report();
  append_report_frame(r, WireOptions{}, bytes);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(bytes, out);
  parser.finish();
  ASSERT_EQ(out.size(), 1u);  // the valid frame after the junk is found
  expect_bitwise(r, out[0]);
  EXPECT_EQ(parser.stats().oversized_length, 1u);
  expect_accounted(parser);
}

TEST(Proto, GarbagePrefixResync) {
  std::vector<std::uint8_t> bytes(100, 0x55);  // no 0xBB anywhere in prefix
  const sim::TagReport r = make_report();
  append_report_frame(r, WireOptions{}, bytes);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(bytes, out);
  parser.finish();
  ASSERT_EQ(out.size(), 1u);
  expect_bitwise(r, out[0]);
  EXPECT_EQ(parser.stats().resync_bytes, 100u);
  expect_accounted(parser);
}

TEST(Proto, PcWordDisagreesWithPayload) {
  // Patch the PC word to claim a 31-word EPC inside a 6-word record, then
  // re-fix the frame checksum so only the record-level check can catch it.
  std::vector<std::uint8_t> bytes;
  append_report_frame(make_report(), WireOptions{}, bytes);
  bytes[6] = static_cast<std::uint8_t>(pc_for_words(31) >> 8);
  fix_frame_checksum(bytes);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(bytes, out);
  parser.finish();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parser.stats().frames, 1u);  // frame itself is intact
  EXPECT_EQ(parser.stats().bad_pc_length, 1u);
  expect_accounted(parser);
}

TEST(Proto, TagCrcMismatchSkipsRecordOnly) {
  // Two records in one frame; corrupt an EPC byte of the first (fixing the
  // frame checksum): the second record must still decode.
  const sim::TagReport first = make_report(1);
  const sim::TagReport second = make_report(2);
  std::vector<sim::TagReport> reports = {first, second};
  WireOptions options;
  options.records_per_frame = 2;
  std::vector<std::uint8_t> bytes = serialize_stream(reports, options);
  bytes[8] ^= 0xFF;  // first EPC byte of record 1
  fix_frame_checksum(bytes);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(bytes, out);
  parser.finish();
  ASSERT_EQ(out.size(), 1u);
  expect_bitwise(second, out[0]);
  EXPECT_EQ(parser.stats().bad_tag_crc, 1u);
  EXPECT_EQ(parser.stats().reports, 1u);
  expect_accounted(parser);
}

TEST(Proto, NonFiniteFieldRejected) {
  // Stomp the raw phase doubles with NaN bits; the 1-byte frame checksum is
  // re-fixed so only the parser's field sanity check stands in the way.
  std::vector<std::uint8_t> bytes;
  append_report_frame(make_report(), WireOptions{}, bytes);
  // Full-profile ext doubles start at payload offset 24 (time), phase at 32;
  // frame offset = 5 + payload offset.
  const std::size_t phase_at = 5 + 32;
  bytes[phase_at] = 0x7F;
  bytes[phase_at + 1] = 0xF8;
  for (std::size_t i = 2; i < 8; ++i) bytes[phase_at + i] = 0x00;
  fix_frame_checksum(bytes);

  FrameParser parser;
  std::vector<sim::TagReport> out;
  parser.feed(bytes, out);
  parser.finish();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parser.stats().bad_value, 1u);
  EXPECT_EQ(parser.stats().frames, 1u);
  expect_accounted(parser);
}

// ------------------------------------------------------------ fuzz corpus

TEST(ProtoFuzz, SeededMutationCorpusNeverCrashes) {
  FuzzConfig config;
  config.iterations = 2500;
  const FuzzResult r = run_mutation_corpus(config);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.canary_failures, 0u);
  EXPECT_EQ(r.accounting_failures, 0u);
  EXPECT_EQ(r.canaries_recovered, r.iterations);
  // The acceptance bar: >= 10k mutated frames replayed without a violation.
  EXPECT_GE(r.frames_serialized, 10000u);
}

// ------------------------------------------------------- serve integration

TEST(ServeWire, WireIngestMatchesDirectIngest) {
  core::PipelineConfig config;
  config.windows_per_sample = 3;
  core::Pipeline pipeline(config, 4242);
  const core::SampleRun run = pipeline.run_sample(2, pipeline.fork_sample_rng());
  const double t0 = config.bootstrap_sec + 0.5 * config.window_sec;

  core::ModelConfig model_config;
  core::M2AINetwork reference(model_config, config.feature_mode,
                              pipeline.num_tags(), config.num_antennas, 12);

  serve::ServeConfig serve_config;
  serve_config.dsp_workers = 2;

  // Reference: structs pushed directly.
  serve::Service direct(serve_config, config, reference.clone());
  direct.add_stream(run.calibrator.get(), t0);
  direct.start();
  for (const auto& report : run.reports) direct.push(0, report);
  direct.finish();

  // Same reports through the reader-side serializer and the wire parser.
  serve::Service wired(serve_config, config, reference.clone());
  wired.add_stream(run.calibrator.get(), t0);
  wired.start();
  WireOptions options;
  options.records_per_frame = 4;
  const std::vector<std::uint8_t> bytes = serialize_stream(run.reports, options);
  for (std::size_t at = 0; at < bytes.size(); at += 4096) {
    wired.push_bytes(0, bytes.data() + at,
                     std::min<std::size_t>(4096, bytes.size() - at));
  }
  wired.finish();

  const auto& expected = direct.predictions(0);
  const auto& got = wired.predictions(0);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].frame_index, expected[i].frame_index);
    EXPECT_EQ(got[i].label, expected[i].label);
  }

  const serve::ServiceStats stats = wired.stats();
  EXPECT_EQ(stats.reports, run.reports.size());
  EXPECT_EQ(stats.invalid_dropped, 0u);
  EXPECT_EQ(stats.wire.reports, run.reports.size());
  EXPECT_EQ(stats.wire.rejected_frames(), 0u);
  EXPECT_EQ(stats.wire.rejected_records(), 0u);
  EXPECT_EQ(stats.wire.bytes_fed, bytes.size());
}

TEST(ServeWire, InvalidReportsAreCountedNotSilent) {
  core::PipelineConfig config;
  config.windows_per_sample = 2;
  core::Pipeline pipeline(config, 99);
  const core::SampleRun run = pipeline.run_sample(1, pipeline.fork_sample_rng());
  const double t0 = config.bootstrap_sec + 0.5 * config.window_sec;

  core::ModelConfig model_config;
  auto network = std::make_unique<core::M2AINetwork>(
      model_config, config.feature_mode, pipeline.num_tags(),
      config.num_antennas, 12);

  serve::Service service(serve::ServeConfig{}, config, std::move(network));
  service.add_stream(run.calibrator.get(), t0);
  service.start();
  // A corrupt-but-checksum-valid wire stream can carry ids the stream cannot
  // place; each must land in invalid_dropped, not crash the DSP worker.
  sim::TagReport bad_tag = run.reports.front();
  bad_tag.tag_id = 0;
  sim::TagReport bad_tag2 = run.reports.front();
  bad_tag2.tag_id = 999;
  sim::TagReport bad_antenna = run.reports.front();
  bad_antenna.antenna = 9;
  sim::TagReport bad_channel = run.reports.front();
  bad_channel.channel = 99;  // would throw inside the calibrator
  service.push(0, bad_tag);
  service.push(0, bad_tag2);
  service.push(0, bad_antenna);
  service.push(0, bad_channel);
  for (const auto& report : run.reports) service.push(0, report);
  service.finish();

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.invalid_dropped, 4u);
  EXPECT_EQ(stats.reports, run.reports.size());
  EXPECT_EQ(service.predictions(0).size(), 1u);
}

}  // namespace
}  // namespace m2ai::proto
