#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"
#include "util/json.hpp"

namespace m2ai::obs {
namespace {

// Timeline state is process-global and thread entries persist for the
// binary's lifetime (rings are only reset, never removed), so each test
// matches on event content rather than assuming an empty thread list.
class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_all();
    set_enabled(true);
    set_timeline_enabled(true);
  }
  void TearDown() override {
    set_timeline_enabled(false);
    set_enabled(false);
    set_timeline_capacity(8192);
    reset_all();
  }

  // All events across every thread ring, oldest-first per thread.
  static std::vector<TimelineEvent> all_events() {
    std::vector<TimelineEvent> out;
    for (const TimelineThreadSnapshot& t : timeline_snapshot()) {
      out.insert(out.end(), t.events.begin(), t.events.end());
    }
    return out;
  }

  static const TimelineEvent* find_event(const std::vector<TimelineEvent>& events,
                                         const std::string& name,
                                         TimelineEventType type) {
    for (const TimelineEvent& ev : events) {
      if (name == ev.name && ev.type == type) return &ev;
    }
    return nullptr;
  }
};

TEST_F(TimelineTest, DisabledRecordsNothing) {
  set_timeline_enabled(false);
  timeline_instant("ghost");
  timeline_counter("ghost.counter", 1.0);
  { M2AI_OBS_SPAN("ghost_span"); }
  EXPECT_TRUE(all_events().empty());
}

TEST_F(TimelineTest, RecordsInstantCounterAndFlowEvents) {
  timeline_instant("marker");
  timeline_counter("depth", 3.5);
  timeline_flow_start("hop", 7);
  timeline_flow_end("hop", 7);

  const auto events = all_events();
  EXPECT_NE(find_event(events, "marker", TimelineEventType::kInstant), nullptr);
  const TimelineEvent* counter =
      find_event(events, "depth", TimelineEventType::kCounter);
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->value, 3.5);
  const TimelineEvent* fs = find_event(events, "hop", TimelineEventType::kFlowStart);
  const TimelineEvent* fe = find_event(events, "hop", TimelineEventType::kFlowEnd);
  ASSERT_NE(fs, nullptr);
  ASSERT_NE(fe, nullptr);
  EXPECT_EQ(fs->flow_id, 7u);
  EXPECT_EQ(fe->flow_id, 7u);
}

TEST_F(TimelineTest, ScopedSpanLandsOnTimelineWithArgs) {
  {
    ScopedSpan span("timed_work");
    span.arg("cell", 4);
    span.arg("rep", 2);
    span.arg_str("experiment", "fig9_headline");
  }
  const auto events = all_events();
  const TimelineEvent* ev =
      find_event(events, "timed_work", TimelineEventType::kComplete);
  ASSERT_NE(ev, nullptr);
  ASSERT_NE(ev->arg_key1, nullptr);
  EXPECT_STREQ(ev->arg_key1, "cell");
  EXPECT_EQ(ev->arg1, 4);
  ASSERT_NE(ev->arg_key2, nullptr);
  EXPECT_STREQ(ev->arg_key2, "rep");
  EXPECT_EQ(ev->arg2, 2);
  ASSERT_NE(ev->str_key, nullptr);
  EXPECT_STREQ(ev->str_key, "experiment");
  EXPECT_STREQ(ev->str_value, "fig9_headline");
}

TEST_F(TimelineTest, SpanWithoutTimelineStillAggregates) {
  set_timeline_enabled(false);
  { M2AI_OBS_SPAN("agg_only"); }
  EXPECT_TRUE(all_events().empty());
  bool found = false;
  for (const SpanStats& s : spans().snapshot()) found = found || s.name == "agg_only";
  EXPECT_TRUE(found);
}

TEST_F(TimelineTest, RingOverflowDropsOldestAndCounts) {
  set_timeline_capacity(16);
  // A fresh thread gets a fresh ring sized at the new capacity.
  std::thread recorder([] {
    for (int i = 0; i < 40; ++i) {
      timeline_counter("overflow.seq", static_cast<double>(i));
    }
  });
  recorder.join();

  const TimelineThreadSnapshot* ring = nullptr;
  for (const TimelineThreadSnapshot& t : timeline_snapshot()) {
    if (!t.events.empty() && std::string(t.events[0].name) == "overflow.seq") {
      ring = &t;
      break;
    }
  }
  ASSERT_NE(ring, nullptr);
  ASSERT_EQ(ring->events.size(), 16u);
  EXPECT_EQ(ring->dropped, 24u);
  // Oldest events were overwritten: the ring holds the newest 16, in order.
  EXPECT_DOUBLE_EQ(ring->events.front().value, 24.0);
  EXPECT_DOUBLE_EQ(ring->events.back().value, 39.0);
  EXPECT_GE(timeline_dropped_total(), 24u);
  EXPECT_GE(registry().counter("obs.timeline.dropped_events").value(), 24u);
}

TEST_F(TimelineTest, RegisteredThreadNamesAppearInSnapshot) {
  std::thread named([] {
    register_thread_name("unit-thread");
    timeline_instant("named.marker");
  });
  named.join();
  bool found = false;
  for (const TimelineThreadSnapshot& t : timeline_snapshot()) {
    found = found || t.name == "unit-thread";
  }
  EXPECT_TRUE(found);
}

TEST_F(TimelineTest, ResetClearsEventsAndDropCounts) {
  set_timeline_capacity(16);
  std::thread recorder([] {
    for (int i = 0; i < 40; ++i) timeline_instant("reset.me");
  });
  recorder.join();
  timeline_reset();
  EXPECT_TRUE(all_events().empty());
  EXPECT_EQ(timeline_dropped_total(), 0u);
  // Recording still works after the reset (fresh dropped-events counter).
  timeline_instant("after.reset");
  EXPECT_EQ(all_events().size(), 1u);
}

// Validates the exporter output against the Chrome trace-event schema using
// the in-repo JSON parser, with real pool workers supplying the events: the
// trace must contain duration events from >= 2 distinct worker tids whose
// registered names appear as thread_name metadata.
TEST_F(TimelineTest, ChromeTraceValidatesWithWorkerThreads) {
  {
    par::ThreadPool pool(2);
    std::mutex mu;
    std::condition_variable cv;
    int running = 0;
    // Both tasks hold their worker until the other starts, so each of the
    // two workers demonstrably records its own task event.
    auto task = [&] {
      const std::uint64_t start = timeline_now_ns();
      {
        std::unique_lock<std::mutex> lock(mu);
        ++running;
        cv.notify_all();
        cv.wait(lock, [&] { return running >= 2; });
      }
      timeline_complete("both_running", start, timeline_now_ns() - start);
    };
    pool.submit(task);
    pool.submit(task);
    pool.wait_idle();
  }
  timeline_flow_start("arrow", 11);
  timeline_flow_end("arrow", 11);

  const util::JsonValue doc = util::json_parse(to_chrome_trace());
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  std::map<double, std::string> thread_names;  // tid -> registered name
  std::set<double> duration_tids;
  std::set<std::string> phases;
  for (const util::JsonValue& ev : events) {
    const std::string ph = ev.at("ph").as_string();
    phases.insert(ph);
    // Schema: every event carries ph/pid/tid; non-metadata events carry
    // name + ts; X events carry dur.
    ev.at("pid").as_number();
    const double tid = ev.at("tid").as_number();
    if (ph == "M") {
      if (ev.at("name").as_string() == "thread_name") {
        thread_names[tid] = ev.at("args").at("name").as_string();
      }
      continue;
    }
    ev.at("name").as_string();
    ev.at("ts").as_number();
    if (ph == "X") {
      EXPECT_GE(ev.at("dur").as_number(), 0.0);
      if (ev.at("name").as_string() == "both_running") duration_tids.insert(tid);
    }
    if (ph == "C") ev.at("args").at("value").as_number();
    if (ph == "s" || ph == "f") ev.at("id").as_number();
  }

  // >= 2 distinct worker tids recorded the barrier task, and both carry
  // registered worker-N names.
  ASSERT_GE(duration_tids.size(), 2u);
  for (double tid : duration_tids) {
    ASSERT_TRUE(thread_names.count(tid) > 0);
    EXPECT_EQ(thread_names[tid].rfind("worker-", 0), 0u) << thread_names[tid];
  }
  EXPECT_TRUE(phases.count("s") > 0);
  EXPECT_TRUE(phases.count("f") > 0);
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_number(), 0.0);
}

TEST_F(TimelineTest, ChromeTraceArgsSurviveExport) {
  {
    ScopedSpan span("exported_span");
    span.arg("cell", 9);
    span.arg_str("experiment", "fig12_persons");
  }
  const util::JsonValue doc = util::json_parse(to_chrome_trace());
  bool found = false;
  for (const util::JsonValue& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "X") continue;
    if (ev.at("name").as_string() != "exported_span") continue;
    const util::JsonValue& args = ev.at("args");
    EXPECT_DOUBLE_EQ(args.at("cell").as_number(), 9.0);
    EXPECT_EQ(args.at("experiment").as_string(), "fig12_persons");
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TimelineTest, NamesSurviveTheirSourceString) {
  // Regression: events used to keep the caller's name pointer. A span named
  // from a short-lived std::string (nn::Sequential's trace label dies with
  // its model, long before export) left a dangling pointer in the ring and
  // garbage — or worse — in the exported trace.
  {
    std::string ephemeral = "dynamic_label";
    { ScopedSpan span(ephemeral.c_str()); }
    // Clobber the storage before the snapshot reads the event back.
    ephemeral.assign(ephemeral.size(), 'X');
  }
  const TimelineEvent* ev =
      find_event(all_events(), "dynamic_label", TimelineEventType::kComplete);
  ASSERT_NE(ev, nullptr);

  // Over-long names truncate instead of overflowing the inline buffer.
  const std::string long_name(100, 'n');
  timeline_instant(long_name.c_str());
  const auto events = all_events();
  bool truncated = false;
  for (const TimelineEvent& e : events) {
    if (std::string(e.name).find("nnnn") == 0) {
      EXPECT_LT(std::strlen(e.name), long_name.size());
      truncated = true;
    }
  }
  EXPECT_TRUE(truncated);
}

}  // namespace
}  // namespace m2ai::obs
