#include "core/evaluator.hpp"

#include <gtest/gtest.h>

namespace m2ai::core {
namespace {

TEST(ConfusionMatrix, AccountsCounts) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_EQ(cm.total(), 5);
  EXPECT_EQ(cm.count(0, 0), 2);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(2, 0), 1);
}

TEST(ConfusionMatrix, RatesRowNormalized) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  EXPECT_NEAR(cm.rate(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.rate(0, 1), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.rate(1, 0), 0.0);  // empty row
}

TEST(ConfusionMatrix, AccuracyAndPerClass) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  EXPECT_NEAR(cm.accuracy(), 0.75, 1e-12);
  EXPECT_NEAR(cm.class_accuracy(0), 1.0, 1e-12);
  EXPECT_NEAR(cm.class_accuracy(1), 0.5, 1e-12);
  EXPECT_NEAR(cm.min_class_accuracy(), 0.5, 1e-12);
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero) {
  ConfusionMatrix cm(4);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(ConfusionMatrix, RejectsOutOfRange) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, -1), std::out_of_range);
}

TEST(ConfusionMatrix, RendersTable) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 0);
  const std::string s = cm.to_string({"X", "Y"});
  EXPECT_NE(s.find("X"), std::string::npos);
  EXPECT_NE(s.find("100%"), std::string::npos);
}

}  // namespace
}  // namespace m2ai::core
