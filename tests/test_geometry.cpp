#include "rf/geometry.hpp"

#include <gtest/gtest.h>

namespace m2ai::rf {
namespace {

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a - b).y, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
}

TEST(Vec2, NormalizedUnitAndZero) {
  EXPECT_NEAR((Vec2{3, 4}).normalized().norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ((Vec2{0, 0}).normalized().norm(), 0.0);
}

TEST(Geometry, MirrorAcrossWalls) {
  const Wall horizontal{false, 0.0, 0.0, 10.0, 6.0};
  const Vec2 m1 = mirror({3.0, 2.0}, horizontal);
  EXPECT_DOUBLE_EQ(m1.x, 3.0);
  EXPECT_DOUBLE_EQ(m1.y, -2.0);

  const Wall vertical{true, 5.0, 0.0, 10.0, 6.0};
  const Vec2 m2 = mirror({3.0, 2.0}, vertical);
  EXPECT_DOUBLE_EQ(m2.x, 7.0);
  EXPECT_DOUBLE_EQ(m2.y, 2.0);
}

TEST(Geometry, WallIntersectionHit) {
  const Wall wall{false, 0.0, 0.0, 10.0, 6.0};  // y = 0 plane
  const auto hit = wall_intersection({2.0, 3.0}, {2.0, -3.0}, wall);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->x, 2.0);
  EXPECT_DOUBLE_EQ(hit->y, 0.0);
}

TEST(Geometry, WallIntersectionMissesOutsideExtent) {
  const Wall wall{false, 0.0, 0.0, 1.0, 6.0};  // short wall
  EXPECT_FALSE(wall_intersection({5.0, 3.0}, {5.0, -3.0}, wall).has_value());
}

TEST(Geometry, WallIntersectionMissesParallel) {
  const Wall wall{false, 0.0, 0.0, 10.0, 6.0};
  EXPECT_FALSE(wall_intersection({0.0, 1.0}, {5.0, 1.0}, wall).has_value());
}

TEST(Geometry, WallIntersectionMissesBeyondSegment) {
  const Wall wall{false, 0.0, 0.0, 10.0, 6.0};
  EXPECT_FALSE(wall_intersection({2.0, 3.0}, {2.0, 1.0}, wall).has_value());
}

TEST(Geometry, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  // Beyond an endpoint the distance is to the endpoint.
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 0}, {-1, 0}, {1, 0}), 2.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 3}, {0, 0}, {0, 0}), 3.0);
}

TEST(Geometry, SegmentHitsCircle) {
  EXPECT_TRUE(segment_hits_circle({-2, 0}, {2, 0}, {0, 0.2}, 0.5));
  EXPECT_FALSE(segment_hits_circle({-2, 0}, {2, 0}, {0, 1.0}, 0.5));
  // Circle beyond the segment end does not block.
  EXPECT_FALSE(segment_hits_circle({-2, 0}, {-1, 0}, {1, 0}, 0.5));
}

TEST(Geometry, BearingConvention) {
  const Vec2 origin{0, 0}, axis{1, 0};
  EXPECT_NEAR(bearing_deg(origin, axis, {1, 0}), 0.0, 1e-9);     // along axis
  EXPECT_NEAR(bearing_deg(origin, axis, {0, 5}), 90.0, 1e-9);    // broadside
  EXPECT_NEAR(bearing_deg(origin, axis, {-1, 0}), 180.0, 1e-9);  // opposite
  EXPECT_NEAR(bearing_deg(origin, axis, {1, 1}), 45.0, 1e-9);
}

}  // namespace
}  // namespace m2ai::rf
