#include "exp/runner.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "par/parallel_for.hpp"

namespace m2ai::exp {
namespace {

namespace fs = std::filesystem;

// Synthetic experiments: cells are cheap pure functions of (config, rng),
// so these tests exercise the runner's dispatch/merge machinery without
// simulating or training anything.
void register_synthetic(Registry& registry) {
  Experiment a;
  a.id = "alpha";
  a.figure = "Fig. A";
  a.title = "first synthetic experiment";
  a.columns = {"cell", "draw"};
  for (int i = 0; i < 5; ++i) {
    Cell cell;
    cell.label = "a" + std::to_string(i);
    cell.config.samples_per_class = 4 + i;
    cell.run = [label = cell.label](CellContext& ctx) {
      return Rows{{label, std::to_string(ctx.rng.next_u64())}};
    };
    a.cells.push_back(std::move(cell));
  }
  registry.add(std::move(a));

  Experiment b;
  b.id = "beta";
  b.figure = "Fig. B";
  b.title = "second synthetic experiment";
  b.columns = {"cell", "rep", "draw"};
  for (int i = 0; i < 3; ++i) {
    for (int rep = 0; rep < 2; ++rep) {
      Cell cell;
      cell.label = "b" + std::to_string(i);
      cell.repetition = rep;
      cell.config.samples_per_class = 10 + i;
      cell.run = [label = cell.label, rep](CellContext& ctx) {
        return Rows{{label, std::to_string(rep), std::to_string(ctx.rng.next_u64())}};
      };
      b.cells.push_back(std::move(cell));
    }
  }
  registry.add(std::move(b));
}

RunnerOptions quiet_options() {
  RunnerOptions options;
  options.verbose = false;
  return options;
}

std::vector<std::vector<std::string>> all_rows(const SuiteResult& result) {
  std::vector<std::vector<std::string>> rows;
  for (const CellOutcome& out : result.outcomes) {
    for (const auto& row : out.rows) rows.push_back(row);
  }
  return rows;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ExpRunnerFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("m2ai_exp_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  fs::path dir_;
};

TEST(ExpRegistry, RejectsDuplicateIdsAndMissingRunFns) {
  Registry registry;
  register_synthetic(registry);
  Experiment dup;
  dup.id = "alpha";
  EXPECT_THROW(registry.add(std::move(dup)), std::invalid_argument);

  Experiment hollow;
  hollow.id = "hollow";
  hollow.cells.push_back(Cell{});  // no run fn
  EXPECT_THROW(registry.add(std::move(hollow)), std::invalid_argument);

  EXPECT_EQ(registry.all().size(), 2u);
  EXPECT_EQ(registry.total_cells(), 11u);
}

TEST(ExpRunner, UnknownIdAndBadShardSpecThrow) {
  Registry registry;
  register_synthetic(registry);
  EXPECT_THROW(run_cells(registry, {"nope"}, quiet_options()), std::invalid_argument);
  RunnerOptions bad = quiet_options();
  bad.shard_index = 2;
  bad.shard_count = 2;
  EXPECT_THROW(run_cells(registry, {}, bad), std::invalid_argument);
}

TEST(ExpRunner, RowsAreIdenticalAtAnyThreadCount) {
  Registry registry;
  register_synthetic(registry);
  SuiteResult serial, threaded;
  {
    par::ScopedNumThreads one(1);
    serial = run_cells(registry, {}, quiet_options());
  }
  {
    par::ScopedNumThreads four(4);
    threaded = run_cells(registry, {}, quiet_options());
  }
  EXPECT_EQ(all_rows(serial), all_rows(threaded));
}

TEST(ExpRunner, SelectionDoesNotChangeACellsRngStream) {
  // The per-cell RNG comes from a stable key, so running `beta` alone must
  // reproduce the exact rows a full-suite run produced for it.
  Registry registry;
  register_synthetic(registry);
  const SuiteResult full = run_cells(registry, {}, quiet_options());
  const SuiteResult only = run_cells(registry, {"beta"}, quiet_options());
  std::vector<std::vector<std::string>> full_beta;
  for (const CellOutcome& out : full.outcomes) {
    if (out.experiment_id == "beta") {
      for (const auto& row : out.rows) full_beta.push_back(row);
    }
  }
  EXPECT_EQ(full_beta, all_rows(only));
}

TEST_F(ExpRunnerFiles, ShardedRunsMergeToTheUnshardedResult) {
  Registry registry;
  register_synthetic(registry);
  const SuiteResult whole = run_cells(registry, {}, quiet_options());

  const int shard_count = 3;
  std::vector<SuiteResult> shards;
  for (int s = 0; s < shard_count; ++s) {
    RunnerOptions options = quiet_options();
    options.shard_index = s;
    options.shard_count = shard_count;
    shards.push_back(run_cells(registry, {}, options));
  }
  const SuiteResult merged = merge_results(registry, shards);
  EXPECT_EQ(all_rows(whole), all_rows(merged));

  // And the CSV artifacts are byte-identical.
  write_experiment_csvs(registry, whole.outcomes, path("whole"));
  write_experiment_csvs(registry, merged.outcomes, path("merged"));
  for (const char* name : {"alpha.csv", "beta.csv"}) {
    const std::string a = read_file(path("whole") + "/" + name);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, read_file(path("merged") + "/" + name)) << name;
  }
}

TEST_F(ExpRunnerFiles, ShardFileRoundTripsExactly) {
  Registry registry;
  register_synthetic(registry);
  RunnerOptions options = quiet_options();
  options.shard_index = 1;
  options.shard_count = 2;
  SuiteResult shard = run_cells(registry, {}, options);
  // Awkward bytes a naive format would corrupt.
  shard.outcomes[0].rows.push_back({"tab\there", "newline\nthere", "back\\slash\r"});

  write_shard_file(path("shard.tsv"), shard);
  const SuiteResult back = read_shard_file(path("shard.tsv"));
  ASSERT_EQ(back.outcomes.size(), shard.outcomes.size());
  for (std::size_t i = 0; i < shard.outcomes.size(); ++i) {
    EXPECT_EQ(back.outcomes[i].experiment_id, shard.outcomes[i].experiment_id);
    EXPECT_EQ(back.outcomes[i].cell_index, shard.outcomes[i].cell_index);
    EXPECT_EQ(back.outcomes[i].repetition, shard.outcomes[i].repetition);
    EXPECT_EQ(back.outcomes[i].label, shard.outcomes[i].label);
    EXPECT_EQ(back.outcomes[i].rows, shard.outcomes[i].rows);
  }
  EXPECT_EQ(back.cache.hits, shard.cache.hits);
  EXPECT_EQ(back.cache.misses, shard.cache.misses);
}

TEST(ExpRunner, MergeRejectsDuplicateOutcomes) {
  Registry registry;
  register_synthetic(registry);
  const SuiteResult whole = run_cells(registry, {}, quiet_options());
  EXPECT_THROW(merge_results(registry, {whole, whole}), std::runtime_error);
}

TEST_F(ExpRunnerFiles, CsvWriterRejectsPartialCoverage) {
  Registry registry;
  register_synthetic(registry);
  RunnerOptions options = quiet_options();
  options.shard_index = 0;
  options.shard_count = 2;
  const SuiteResult half = run_cells(registry, {}, options);
  EXPECT_THROW(write_experiment_csvs(registry, half.outcomes, path("csv")),
               std::runtime_error);
}

TEST_F(ExpRunnerFiles, SuiteReportCountsCellsAndCache) {
  Registry registry;
  register_synthetic(registry);
  const SuiteResult whole = run_cells(registry, {}, quiet_options());
  const std::string json = suite_report_json(registry, whole, 2, 1.0, "test");
  EXPECT_NE(json.find("\"suite\": \"m2ai_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"cells_run\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"test\""), std::string::npos);
  write_suite_report(path("nested/dir/report.json"), registry, whole, 2, 1.0, "test");
  EXPECT_EQ(read_file(path("nested/dir/report.json")), json);
}

}  // namespace
}  // namespace m2ai::exp
