#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m2ai::nn {
namespace {

TEST(Clipping, LeavesSmallGradientsAlone) {
  Param p("p", {3});
  p.grad = Tensor::from({0.1f, 0.2f, 0.2f});
  const double norm = clip_gradient_norm({&p}, 5.0);
  EXPECT_NEAR(norm, 0.3, 1e-6);
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.1f);
}

TEST(Clipping, ScalesLargeGradientsToMaxNorm) {
  Param p("p", {2});
  p.grad = Tensor::from({3.0f, 4.0f});  // norm 5
  clip_gradient_norm({&p}, 1.0);
  EXPECT_NEAR(p.grad.l2_norm(), 1.0f, 1e-6);
  // Direction preserved.
  EXPECT_NEAR(p.grad.at(1) / p.grad.at(0), 4.0 / 3.0, 1e-5);
}

TEST(Clipping, JointNormAcrossParams) {
  Param a("a", {1}), b("b", {1});
  a.grad = Tensor::from({3.0f});
  b.grad = Tensor::from({4.0f});
  const double norm = clip_gradient_norm({&a, &b}, 2.5);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(a.grad.at(0), 1.5f, 1e-5);
  EXPECT_NEAR(b.grad.at(0), 2.0f, 1e-5);
}

TEST(ZeroGradients, ClearsAll) {
  Param p("p", {2});
  p.grad = Tensor::from({1.0f, 2.0f});
  zero_gradients({&p});
  EXPECT_FLOAT_EQ(p.grad.l2_norm(), 0.0f);
}

TEST(Sgd, PlainStepWithoutMomentum) {
  Param p("p", {1});
  p.value = Tensor::from({1.0f});
  p.grad = Tensor::from({0.5f});
  Sgd sgd(0.1, /*momentum=*/0.0);
  sgd.step({&p});
  EXPECT_NEAR(p.value.at(0), 0.95f, 1e-6);
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.0f);  // grads consumed
}

TEST(Sgd, MomentumAccumulates) {
  Param p("p", {1});
  p.value = Tensor::from({0.0f});
  Sgd sgd(0.1, /*momentum=*/0.9);
  p.grad = Tensor::from({1.0f});
  sgd.step({&p});
  const float step1 = -p.value.at(0);
  p.grad = Tensor::from({1.0f});
  sgd.step({&p});
  const float step2 = -p.value.at(0) - step1;
  EXPECT_GT(step2, step1 * 1.5f);  // momentum grows the step
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p("p", {1});
  p.value = Tensor::from({10.0f});
  p.grad = Tensor::from({0.0f});
  Sgd sgd(0.1, 0.0, /*weight_decay=*/0.1);
  sgd.step({&p});
  EXPECT_LT(p.value.at(0), 10.0f);
}

TEST(Adam, MovesAgainstGradient) {
  Param p("p", {2});
  p.value = Tensor::from({1.0f, -1.0f});
  p.grad = Tensor::from({1.0f, -1.0f});
  Adam adam(0.01);
  adam.step({&p});
  EXPECT_LT(p.value.at(0), 1.0f);
  EXPECT_GT(p.value.at(1), -1.0f);
}

TEST(Adam, FirstStepSizeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr regardless of scale.
  Param p("p", {1});
  p.value = Tensor::from({0.0f});
  p.grad = Tensor::from({100.0f});
  Adam adam(0.01);
  adam.step({&p});
  EXPECT_NEAR(p.value.at(0), -0.01f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2.
  Param p("p", {1});
  p.value = Tensor::from({0.0f});
  Adam adam(0.1);
  for (int i = 0; i < 500; ++i) {
    p.grad = Tensor::from({2.0f * (p.value.at(0) - 3.0f)});
    adam.step({&p});
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 0.05);
}

TEST(Optimizer, SetLrThroughBase) {
  Sgd sgd(0.1);
  Optimizer& base = sgd;
  base.set_lr(0.5);
  EXPECT_DOUBLE_EQ(base.lr(), 0.5);
  Adam adam(0.1);
  Optimizer& base2 = adam;
  base2.set_lr(0.01);
  EXPECT_DOUBLE_EQ(base2.lr(), 0.01);
}

}  // namespace
}  // namespace m2ai::nn
