#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m2ai::util {
namespace {

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  // Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, PercentileEndpointsAndMiddle) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
}

TEST(Stats, CorrelationPerfectAndNone) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  std::vector<double> yn{10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, yn), -1.0, 1e-12);
  std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(correlation(x, flat), 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Stats, LinearFitDegenerate) {
  const LinearFit fit = linear_fit({1.0}, {2.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  RunningStats rs;
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
}

TEST(Stats, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace m2ai::util
