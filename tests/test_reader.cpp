#include "sim/reader.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dsp/phase.hpp"
#include "sim/activities.hpp"

namespace m2ai::sim {
namespace {

Scene make_scene(int num_persons = 1, int tags_per_person = 3,
                 double distance = 4.0, std::uint64_t seed = 11) {
  Environment env = Environment::laboratory();
  ArrayGeometry array;
  array.center = Vec3{env.width / 2.0, 0.4, 1.25};
  util::Rng rng(seed);
  PlacementOptions placement;
  placement.distance_m = distance;
  auto persons =
      instantiate_activity(1, num_persons, env, array.origin2d(), placement, rng);
  return Scene(env, std::move(persons), array, tags_per_person);
}

TEST(Reader, ReportsWithinRequestedInterval) {
  Scene scene = make_scene();
  Reader reader(ReaderConfig{}, 4, 3, util::Rng(1));
  const auto reports = reader.run(scene, 2.0, 4.0);
  EXPECT_FALSE(reports.empty());
  for (const auto& r : reports) {
    EXPECT_GE(r.time_sec, 2.0);
    EXPECT_LT(r.time_sec, 4.0);
  }
}

TEST(Reader, ReportsSortedByTime) {
  Scene scene = make_scene();
  Reader reader(ReaderConfig{}, 4, 3, util::Rng(2));
  const auto reports = reader.run(scene, 0.0, 3.0);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_LE(reports[i - 1].time_sec, reports[i].time_sec);
  }
}

TEST(Reader, QuantizePhaseBoundaryWrapsToZero) {
  const double step = 2.0 * M_PI / 4096.0;
  // A phase just under 2*pi rounds up to step 4096 — exactly 2*pi — and must
  // wrap to 0.0 so the report stays in [0, 2*pi) even without a later
  // wrap_2pi.
  EXPECT_EQ(quantize_phase(2.0 * M_PI - step / 4.0), 0.0);
  EXPECT_EQ(quantize_phase(2.0 * M_PI), 0.0);
  EXPECT_EQ(quantize_phase(0.0), 0.0);
  // Mid-range values land on the nearest grid point.
  EXPECT_EQ(quantize_phase(1.234), std::round(1.234 / step) * step);
  for (int i = 0; i <= 4096; ++i) {
    const double q = quantize_phase(i * (2.0 * M_PI / 4096.0));
    EXPECT_GE(q, 0.0);
    EXPECT_LT(q, 2.0 * M_PI);
  }
}

TEST(Reader, PhaseInPrincipalRange) {
  Scene scene = make_scene();
  Reader reader(ReaderConfig{}, 4, 3, util::Rng(3));
  for (const auto& r : reader.run(scene, 0.0, 2.0)) {
    EXPECT_GE(r.phase_rad, 0.0);
    EXPECT_LT(r.phase_rad, 2.0 * M_PI);
  }
}

TEST(Reader, TdmAntennaSchedule) {
  Scene scene = make_scene();
  Reader reader(ReaderConfig{}, 4, 3, util::Rng(4));
  // Antenna port rotates every 25 ms.
  EXPECT_EQ(reader.antenna_at(0.010), 0);
  EXPECT_EQ(reader.antenna_at(0.030), 1);
  EXPECT_EQ(reader.antenna_at(0.060), 2);
  EXPECT_EQ(reader.antenna_at(0.080), 3);
  EXPECT_EQ(reader.antenna_at(0.101), 0);
  for (const auto& r : reader.run(scene, 0.0, 2.0)) {
    EXPECT_EQ(r.antenna, reader.antenna_at(r.time_sec));
  }
}

TEST(Reader, HoppingDwellIs400ms) {
  Reader reader(ReaderConfig{}, 4, 3, util::Rng(5));
  const int ch = reader.channel_at(0.01);
  EXPECT_EQ(reader.channel_at(0.39), ch);
  std::set<int> seen;
  for (int hop = 0; hop < 50; ++hop) {
    seen.insert(reader.channel_at(hop * 0.4 + 0.2));
  }
  EXPECT_EQ(seen.size(), 50u);  // full FCC plan visited in 20 s
}

TEST(Reader, HoppingDisabledPinsCommonChannel) {
  ReaderConfig config;
  config.hopping = false;
  Reader reader(config, 4, 3, util::Rng(6));
  for (double t = 0.0; t < 5.0; t += 0.4) {
    EXPECT_EQ(reader.channel_at(t), rf::common_channel());
  }
}

TEST(Reader, PhaseQuantizedTo12Bits) {
  Scene scene = make_scene();
  ReaderConfig config;
  Reader reader(config, 4, 3, util::Rng(7));
  const double step = 2.0 * M_PI / 4096.0;
  for (const auto& r : reader.run(scene, 0.0, 1.0)) {
    const double ratio = r.phase_rad / step;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-6);
  }
}

TEST(Reader, RssiQuantizedToHalfDb) {
  Scene scene = make_scene();
  Reader reader(ReaderConfig{}, 4, 3, util::Rng(8));
  for (const auto& r : reader.run(scene, 0.0, 1.0)) {
    const double ratio = r.rssi_dbm * 2.0;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-6);
  }
}

TEST(Reader, HardwareOffsetLinearInFrequency) {
  // Disable the per-channel half-cycle reporting state so the underlying
  // linear response (Fig. 3) is visible directly.
  ReaderConfig config;
  config.pi_ambiguity = false;
  Reader reader(config, 4, 3, util::Rng(9));
  // Offsets, unwrapped over channels, should follow a near-linear trend:
  // check that second differences are small (ripple-scale, not slope-scale).
  std::vector<double> offs;
  for (int ch = 0; ch < rf::kNumChannels; ++ch) {
    offs.push_back(reader.hardware_offset(1, 0, ch));
  }
  const std::vector<double> un = dsp::unwrap(offs);
  for (std::size_t i = 2; i < un.size(); ++i) {
    const double second_diff = un[i] - 2.0 * un[i - 1] + un[i - 2];
    EXPECT_LT(std::abs(second_diff), 0.8);
  }
}

TEST(Reader, OffsetSharedAcrossAntennasUpToMismatch) {
  Reader reader(ReaderConfig{}, 4, 3, util::Rng(10));
  for (int ch = 0; ch < rf::kNumChannels; ch += 7) {
    const double base = reader.hardware_offset(1, 0, ch);
    for (int ant = 1; ant < 4; ++ant) {
      const double diff =
          dsp::circular_distance(base, reader.hardware_offset(1, ant, ch));
      // Port mismatch + ripple, modulo the per-port half-cycle state.
      const double mod_pi = std::min(diff, M_PI - diff);
      EXPECT_LT(mod_pi, 0.5);
    }
  }
}

TEST(Reader, DistantTagsDropReads) {
  // At 4 m the tag responds consistently; far beyond the energy budget the
  // read count collapses.
  Scene near_scene = make_scene(1, 1, 3.0, 21);
  Scene far_scene = make_scene(1, 1, 9.5, 21);
  ReaderConfig config;
  config.sensitivity_dbm = -62.0;  // tighter budget to exercise dropout
  Reader near_reader(config, 4, 1, util::Rng(22));
  Reader far_reader(config, 4, 1, util::Rng(22));
  const auto near_reports = near_reader.run(near_scene, 0.0, 4.0);
  const auto far_reports = far_reader.run(far_scene, 0.0, 4.0);
  EXPECT_GT(near_reports.size(), far_reports.size());
}

TEST(Reader, DeterministicForSeed) {
  Scene scene1 = make_scene(2, 3, 4.0, 33);
  Scene scene2 = make_scene(2, 3, 4.0, 33);
  Reader r1(ReaderConfig{}, 4, 6, util::Rng(12));
  Reader r2(ReaderConfig{}, 4, 6, util::Rng(12));
  const auto a = r1.run(scene1, 0.0, 1.0);
  const auto b = r2.run(scene2, 0.0, 1.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].phase_rad, b[i].phase_rad);
    EXPECT_DOUBLE_EQ(a[i].rssi_dbm, b[i].rssi_dbm);
    EXPECT_EQ(a[i].tag_id, b[i].tag_id);
  }
}

TEST(Reader, DopplerTracksRadialMotion) {
  // A person pacing toward/away from the array produces Doppler magnitudes
  // around 2*v/lambda; a stationary scene stays near zero.
  Environment env = Environment::open_space();
  ArrayGeometry array;
  array.center = Vec3{0.0, 0.4, 1.25};
  BodyParams body;
  MotionSpec pace;
  pace.gait = GaitType::kWalkLine;
  pace.gait_freq_hz = 0.25;
  pace.gait_amplitude_m = 1.0;
  // Heading -y: straight toward the array -> motion is purely radial.
  Person pacer(body, {0.0, 4.0}, -M_PI / 2.0, pace);
  Scene moving(env, {pacer}, array, 1);

  MotionSpec still;
  still.gait_amplitude_m = 0.0;
  Person stander(body, {0.0, 4.0}, -M_PI / 2.0, still);
  Scene frozen(env, {stander}, array, 1);
  frozen.set_motion_frozen(true);

  ReaderConfig config;
  Reader r1(config, 4, 1, util::Rng(55));
  Reader r2(config, 4, 1, util::Rng(55));
  double max_moving = 0.0, max_frozen = 0.0;
  for (const auto& r : r1.run(moving, 0.0, 4.0)) {
    max_moving = std::max(max_moving, std::abs(r.doppler_hz));
  }
  for (const auto& r : r2.run(frozen, 0.0, 4.0)) {
    max_frozen = std::max(max_frozen, std::abs(r.doppler_hz));
  }
  // Peak walking speed 2*pi*f*A ~ 1.6 m/s -> |f_d| up to ~2*v/lambda ~ 10 Hz.
  EXPECT_GT(max_moving, 2.0);
  EXPECT_LT(max_moving, 25.0);
  EXPECT_LT(max_frozen, 0.5);
}

TEST(Reader, DopplerQuantizedToSixteenthHz) {
  Scene scene = make_scene();
  Reader reader(ReaderConfig{}, 4, 3, util::Rng(56));
  for (const auto& r : reader.run(scene, 0.0, 1.0)) {
    const double ratio = r.doppler_hz * 16.0;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-6);
  }
}

TEST(Reader, AllTagsReported) {
  Scene scene = make_scene(2, 3);
  Reader reader(ReaderConfig{}, 4, 6, util::Rng(13));
  std::set<std::uint32_t> seen;
  for (const auto& r : reader.run(scene, 0.0, 2.0)) seen.insert(r.tag_id);
  EXPECT_EQ(seen.size(), 6u);
}

}  // namespace
}  // namespace m2ai::sim
