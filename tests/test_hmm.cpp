#include "ml/hmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m2ai::ml {
namespace {

// Synthetic sequence family: class decides the emission trajectory.
//  class 0: features ramp up over time;   class 1: ramp down;
//  class 2: oscillate.
FeatureSequence make_sequence(int label, int t_len, util::Rng& rng) {
  FeatureSequence seq;
  for (int t = 0; t < t_len; ++t) {
    const double u = static_cast<double>(t) / static_cast<double>(t_len - 1);
    double base = 0.0;
    switch (label) {
      case 0: base = 2.0 * u - 1.0; break;
      case 1: base = 1.0 - 2.0 * u; break;
      default: base = std::sin(4.0 * M_PI * u); break;
    }
    seq.push_back({static_cast<float>(base + rng.normal(0.0, 0.2)),
                   static_cast<float>(0.5 * base + rng.normal(0.0, 0.2))});
  }
  return seq;
}

TEST(GaussianHmm, LikelihoodFiniteAndOrdersSequences) {
  util::Rng rng(1);
  std::vector<FeatureSequence> train;
  for (int i = 0; i < 30; ++i) train.push_back(make_sequence(0, 12, rng));
  GaussianHmm model(3, 2, 7);
  model.fit(train);

  const double ll_match = model.log_likelihood(make_sequence(0, 12, rng));
  const double ll_other = model.log_likelihood(make_sequence(1, 12, rng));
  EXPECT_TRUE(std::isfinite(ll_match));
  EXPECT_GT(ll_match, ll_other);  // the model prefers its own class
}

TEST(GaussianHmm, EmptySequenceIsImpossible) {
  GaussianHmm model(2, 2, 3);
  EXPECT_EQ(model.log_likelihood({}), -std::numeric_limits<double>::infinity());
}

TEST(GaussianHmm, RejectsBadConstruction) {
  EXPECT_THROW(GaussianHmm(0, 2, 1), std::invalid_argument);
  EXPECT_THROW(GaussianHmm(2, 0, 1), std::invalid_argument);
}

TEST(GaussianHmm, RejectsEmptyTraining) {
  GaussianHmm model(2, 2, 1);
  EXPECT_THROW(model.fit({}), std::invalid_argument);
}

TEST(HmmSequenceClassifier, SeparatesTemporalClasses) {
  util::Rng rng(2);
  std::vector<FeatureSequence> train, test;
  std::vector<int> train_labels, test_labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      train.push_back(make_sequence(c, 14, rng));
      train_labels.push_back(c);
    }
    for (int i = 0; i < 15; ++i) {
      test.push_back(make_sequence(c, 14, rng));
      test_labels.push_back(c);
    }
  }
  HmmSequenceClassifier hmm(4, 10);
  hmm.fit(train, train_labels, 3);
  EXPECT_GT(hmm.accuracy(test, test_labels), 0.9);
}

TEST(HmmSequenceClassifier, TemporalOrderMatters) {
  // Classes 0 and 1 have identical marginal feature distributions (one is
  // the time-reverse of the other): any frame-level classifier is blind,
  // but the HMM separates them.
  util::Rng rng(3);
  std::vector<FeatureSequence> train;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    train.push_back(make_sequence(0, 14, rng));
    labels.push_back(0);
    train.push_back(make_sequence(1, 14, rng));
    labels.push_back(1);
  }
  HmmSequenceClassifier hmm(4, 10);
  hmm.fit(train, labels, 2);
  int correct = 0;
  for (int i = 0; i < 20; ++i) {
    const int c = i % 2;
    if (hmm.predict(make_sequence(c, 14, rng)) == c) ++correct;
  }
  EXPECT_GE(correct, 18);
}

TEST(HmmSequenceClassifier, PredictBeforeFitThrows) {
  HmmSequenceClassifier hmm;
  EXPECT_THROW(hmm.predict({{1.0f}}), std::logic_error);
}

TEST(HmmSequenceClassifier, MismatchedLabelsRejected) {
  HmmSequenceClassifier hmm;
  std::vector<FeatureSequence> seqs{{{1.0f, 2.0f}}};
  EXPECT_THROW(hmm.fit(seqs, {0, 1}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace m2ai::ml
