// Trainer-level regressions: batch-size-invariant gradient scaling (the
// accumulated batch gradient must be divided by the number of samples that
// actually contributed before clip+step) and the LR-schedule breakpoint
// clamp (epochs=1 must train its single epoch at the full learning rate).
#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/telemetry.hpp"
#include "util/rng.hpp"

namespace m2ai::core {
namespace {

constexpr int kTags = 2;
constexpr int kAntennas = 4;
constexpr int kClasses = 3;

Sample make_sample(int label, std::uint64_t seed) {
  util::Rng rng(seed);
  Sample sample;
  sample.label = label;
  for (int t = 0; t < 6; ++t) {
    SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({kTags, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({kTags, kAntennas});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    sample.frames.push_back(std::move(f));
  }
  return sample;
}

ModelConfig small_model() {
  ModelConfig model;
  model.lstm_hidden = 8;
  model.merge_features = 12;
  model.dropout = 0.0;  // dropout would break run-to-run comparability
  return model;
}

TrainConfig plain_train(int batch_size, int epochs = 1) {
  TrainConfig config;
  config.batch_size = batch_size;
  config.epochs = epochs;
  config.lr_schedule = false;
  config.crop_frames = 0;
  return config;
}

std::vector<float> snapshot_params(M2AINetwork& network) {
  std::vector<float> values;
  for (const nn::Param* p : network.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) values.push_back(p->value[i]);
  }
  return values;
}

void expect_params_near(M2AINetwork& a, M2AINetwork& b, float tol) {
  const auto va = snapshot_params(a);
  const auto vb = snapshot_params(b);
  ASSERT_EQ(va.size(), vb.size());
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < va.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(va[i] - vb[i]));
  }
  EXPECT_LE(max_diff, tol);
}

// With N copies of one sample and batch_size=N, the accumulated gradient is
// N*g; normalized by N it must reproduce the batch_size=1 single-sample
// step. EXPECT tolerance (not equality) because ((g+g)+g)+g)/4 rounds
// differently than g in float.
TEST(Trainer, StepIsBatchSizeInvariant) {
  M2AINetwork net_b4(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  M2AINetwork net_b1(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);

  const Sample sample = make_sample(1, 21);
  {
    Trainer trainer(net_b4, plain_train(/*batch_size=*/4));
    trainer.run_epoch({sample, sample, sample, sample});  // one step of mean grad
  }
  {
    Trainer trainer(net_b1, plain_train(/*batch_size=*/1));
    trainer.run_epoch({sample});  // one step of the same grad
  }
  expect_params_near(net_b4, net_b1, 1e-5f);
}

// 5 samples at batch_size=4 take two steps: a full batch of 4 and a partial
// batch of 1. Both must be normalized by their own sample count, so the
// trajectory matches two batch_size=1 steps on the same sample.
TEST(Trainer, PartialFinalBatchIsNormalizedByItsOwnCount) {
  M2AINetwork net_partial(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  M2AINetwork net_single(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);

  const Sample sample = make_sample(2, 22);
  {
    Trainer trainer(net_partial, plain_train(/*batch_size=*/4));
    trainer.run_epoch({sample, sample, sample, sample, sample});
  }
  {
    Trainer trainer(net_single, plain_train(/*batch_size=*/1));
    trainer.run_epoch({sample, sample});
  }
  expect_params_near(net_partial, net_single, 1e-4f);
}

// Regression for the integer-math breakpoints: epochs * 85 / 100 == 0 for
// epochs=1 used to put the only epoch straight into the 0.09x regime.
TEST(Trainer, SingleEpochBudgetTrainsAtFullLearningRate) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::training().clear();

  M2AINetwork net(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  TrainConfig config = plain_train(/*batch_size=*/2, /*epochs=*/1);
  config.lr_schedule = true;
  Trainer trainer(net, config);
  trainer.fit({make_sample(0, 23), make_sample(1, 24)});

  const auto epochs = obs::training().snapshot();
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(epochs[0].learning_rate, config.learning_rate);

  obs::training().clear();
  obs::set_enabled(was_enabled);
}

// With epochs=3 the clamped breakpoints are 60% -> 1 and 85% -> 2, giving
// the full three-stage schedule lr, 0.3*lr, 0.09*lr.
TEST(Trainer, ThreeEpochBudgetWalksTheFullSchedule) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::training().clear();

  M2AINetwork net(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  TrainConfig config = plain_train(/*batch_size=*/2, /*epochs=*/3);
  config.lr_schedule = true;
  Trainer trainer(net, config);
  trainer.fit({make_sample(0, 25), make_sample(2, 26)});

  const auto epochs = obs::training().snapshot();
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_DOUBLE_EQ(epochs[0].learning_rate, config.learning_rate);
  EXPECT_DOUBLE_EQ(epochs[1].learning_rate, config.learning_rate * 0.3);
  EXPECT_DOUBLE_EQ(epochs[2].learning_rate, config.learning_rate * 0.09);

  obs::training().clear();
  obs::set_enabled(was_enabled);
}

// The clamp only rescues tiny budgets: at epochs=5 the integer breakpoints
// (3 and 4) are already >= 1 and must be left exactly as before.
TEST(Trainer, LargerBudgetBreakpointsUnchanged) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::training().clear();

  M2AINetwork net(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  TrainConfig config = plain_train(/*batch_size=*/2, /*epochs=*/5);
  config.lr_schedule = true;
  Trainer trainer(net, config);
  trainer.fit({make_sample(0, 27), make_sample(1, 28)});

  // epochs=5: 60% -> 3, 85% -> 4 (no clamping involved).
  const auto epochs = obs::training().snapshot();
  ASSERT_EQ(epochs.size(), 5u);
  EXPECT_DOUBLE_EQ(epochs[2].learning_rate, config.learning_rate);
  EXPECT_DOUBLE_EQ(epochs[3].learning_rate, config.learning_rate * 0.3);
  EXPECT_DOUBLE_EQ(epochs[4].learning_rate, config.learning_rate * 0.09);

  obs::training().clear();
  obs::set_enabled(was_enabled);
}

}  // namespace
}  // namespace m2ai::core
