// Trainer-level regressions: batch-size-invariant gradient scaling (the
// accumulated batch gradient must be divided by the number of samples that
// actually contributed before clip+step), the LR-schedule breakpoint clamp
// (epochs=1 must train its single epoch at the full learning rate), and the
// data-parallel determinism guarantee (checkpoints and telemetry identical
// at any thread count, including random-crop and dropout paths).
#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "obs/telemetry.hpp"
#include "par/parallel_for.hpp"
#include "util/rng.hpp"

namespace m2ai::core {
namespace {

constexpr int kTags = 2;
constexpr int kAntennas = 4;
constexpr int kClasses = 3;

Sample make_sample(int label, std::uint64_t seed) {
  util::Rng rng(seed);
  Sample sample;
  sample.label = label;
  for (int t = 0; t < 6; ++t) {
    SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({kTags, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({kTags, kAntennas});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    sample.frames.push_back(std::move(f));
  }
  return sample;
}

ModelConfig small_model() {
  ModelConfig model;
  model.lstm_hidden = 8;
  model.merge_features = 12;
  model.dropout = 0.0;  // dropout would break run-to-run comparability
  return model;
}

TrainConfig plain_train(int batch_size, int epochs = 1) {
  TrainConfig config;
  config.batch_size = batch_size;
  config.epochs = epochs;
  config.lr_schedule = false;
  config.crop_frames = 0;
  return config;
}

std::vector<float> snapshot_params(M2AINetwork& network) {
  std::vector<float> values;
  for (const nn::Param* p : network.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) values.push_back(p->value[i]);
  }
  return values;
}

void expect_params_near(M2AINetwork& a, M2AINetwork& b, float tol) {
  const auto va = snapshot_params(a);
  const auto vb = snapshot_params(b);
  ASSERT_EQ(va.size(), vb.size());
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < va.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(va[i] - vb[i]));
  }
  EXPECT_LE(max_diff, tol);
}

// With N copies of one sample and batch_size=N, the accumulated gradient is
// N*g; normalized by N it must reproduce the batch_size=1 single-sample
// step. EXPECT tolerance (not equality) because ((g+g)+g)+g)/4 rounds
// differently than g in float.
TEST(Trainer, StepIsBatchSizeInvariant) {
  M2AINetwork net_b4(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  M2AINetwork net_b1(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);

  const Sample sample = make_sample(1, 21);
  {
    Trainer trainer(net_b4, plain_train(/*batch_size=*/4));
    trainer.run_epoch({sample, sample, sample, sample});  // one step of mean grad
  }
  {
    Trainer trainer(net_b1, plain_train(/*batch_size=*/1));
    trainer.run_epoch({sample});  // one step of the same grad
  }
  expect_params_near(net_b4, net_b1, 1e-5f);
}

// 5 samples at batch_size=4 take two steps: a full batch of 4 and a partial
// batch of 1. Both must be normalized by their own sample count, so the
// trajectory matches two batch_size=1 steps on the same sample.
TEST(Trainer, PartialFinalBatchIsNormalizedByItsOwnCount) {
  M2AINetwork net_partial(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  M2AINetwork net_single(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);

  const Sample sample = make_sample(2, 22);
  {
    Trainer trainer(net_partial, plain_train(/*batch_size=*/4));
    trainer.run_epoch({sample, sample, sample, sample, sample});
  }
  {
    Trainer trainer(net_single, plain_train(/*batch_size=*/1));
    trainer.run_epoch({sample, sample});
  }
  expect_params_near(net_partial, net_single, 1e-4f);
}

// Regression for the integer-math breakpoints: epochs * 85 / 100 == 0 for
// epochs=1 used to put the only epoch straight into the 0.09x regime.
TEST(Trainer, SingleEpochBudgetTrainsAtFullLearningRate) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::training().clear();

  M2AINetwork net(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  TrainConfig config = plain_train(/*batch_size=*/2, /*epochs=*/1);
  config.lr_schedule = true;
  Trainer trainer(net, config);
  trainer.fit({make_sample(0, 23), make_sample(1, 24)});

  const auto epochs = obs::training().snapshot();
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(epochs[0].learning_rate, config.learning_rate);

  obs::training().clear();
  obs::set_enabled(was_enabled);
}

// With epochs=3 the clamped breakpoints are 60% -> 1 and 85% -> 2, giving
// the full three-stage schedule lr, 0.3*lr, 0.09*lr.
TEST(Trainer, ThreeEpochBudgetWalksTheFullSchedule) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::training().clear();

  M2AINetwork net(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  TrainConfig config = plain_train(/*batch_size=*/2, /*epochs=*/3);
  config.lr_schedule = true;
  Trainer trainer(net, config);
  trainer.fit({make_sample(0, 25), make_sample(2, 26)});

  const auto epochs = obs::training().snapshot();
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_DOUBLE_EQ(epochs[0].learning_rate, config.learning_rate);
  EXPECT_DOUBLE_EQ(epochs[1].learning_rate, config.learning_rate * 0.3);
  EXPECT_DOUBLE_EQ(epochs[2].learning_rate, config.learning_rate * 0.09);

  obs::training().clear();
  obs::set_enabled(was_enabled);
}

// The clamp only rescues tiny budgets: at epochs=5 the integer breakpoints
// (3 and 4) are already >= 1 and must be left exactly as before.
TEST(Trainer, LargerBudgetBreakpointsUnchanged) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::training().clear();

  M2AINetwork net(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  TrainConfig config = plain_train(/*batch_size=*/2, /*epochs=*/5);
  config.lr_schedule = true;
  Trainer trainer(net, config);
  trainer.fit({make_sample(0, 27), make_sample(1, 28)});

  // epochs=5: 60% -> 3, 85% -> 4 (no clamping involved).
  const auto epochs = obs::training().snapshot();
  ASSERT_EQ(epochs.size(), 5u);
  EXPECT_DOUBLE_EQ(epochs[2].learning_rate, config.learning_rate);
  EXPECT_DOUBLE_EQ(epochs[3].learning_rate, config.learning_rate * 0.3);
  EXPECT_DOUBLE_EQ(epochs[4].learning_rate, config.learning_rate * 0.09);

  obs::training().clear();
  obs::set_enabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Data-parallel determinism: the replica-sharded trainer must produce the
// SAME bytes as the serial path at any thread count.

// RAII thread-count override so a failing test cannot leak its setting.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(par::num_threads()) {
    par::set_num_threads(n);
  }
  ~ScopedThreads() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

Sample make_sample_frames(int label, int t_len, std::uint64_t seed) {
  util::Rng rng(seed);
  Sample sample;
  sample.label = label;
  for (int t = 0; t < t_len; ++t) {
    SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({kTags, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({kTags, kAntennas});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    sample.frames.push_back(std::move(f));
  }
  return sample;
}

// Mixed-length set so the random-crop branch fires for some samples (8
// frames > crop) and not others (4 frames), exercising the crop RNG's
// draw-order invariance.
std::vector<Sample> mixed_training_set() {
  std::vector<Sample> train;
  for (int i = 0; i < 10; ++i) {
    train.push_back(make_sample_frames(i % kClasses, i % 3 == 0 ? 4 : 8,
                                       1000 + static_cast<std::uint64_t>(i)));
  }
  return train;
}

std::vector<unsigned char> param_bytes(M2AINetwork& network) {
  std::vector<unsigned char> bytes;
  for (const nn::Param* p : network.params()) {
    const auto* raw = reinterpret_cast<const unsigned char*>(p->value.data());
    bytes.insert(bytes.end(), raw, raw + p->value.size() * sizeof(float));
  }
  return bytes;
}

// One full fit() at the given thread count; dropout > 0 and crop_frames > 0
// so both per-sample RNG streams are exercised. Returns the checkpoint
// bytes and the telemetry records.
std::pair<std::vector<unsigned char>, std::vector<obs::EpochRecord>> train_at(
    int threads) {
  ScopedThreads t(threads);
  obs::training().clear();
  ModelConfig model = small_model();
  model.dropout = 0.25;  // stochastic path must also be thread-count-invariant
  M2AINetwork net(model, FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  TrainConfig config = plain_train(/*batch_size=*/4, /*epochs=*/3);
  config.crop_frames = 6;
  config.lr_schedule = true;
  Trainer trainer(net, config);
  trainer.fit(mixed_training_set());
  return {param_bytes(net), obs::training().snapshot()};
}

TEST(TrainerParallel, CheckpointBitwiseIdenticalAcrossThreadCounts) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const auto serial = train_at(1);
  const auto parallel = train_at(4);
  ASSERT_EQ(serial.first.size(), parallel.first.size());
  EXPECT_EQ(0, std::memcmp(serial.first.data(), parallel.first.data(),
                           serial.first.size()))
      << "trained checkpoints differ between --threads 1 and --threads 4";
  obs::training().clear();
  obs::set_enabled(was_enabled);
}

TEST(TrainerParallel, EpochTelemetryIdenticalAcrossThreadCounts) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const auto serial = train_at(1);
  const auto parallel = train_at(4);
  ASSERT_EQ(serial.second.size(), parallel.second.size());
  for (std::size_t e = 0; e < serial.second.size(); ++e) {
    const obs::EpochRecord& a = serial.second[e];
    const obs::EpochRecord& b = parallel.second[e];
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.loss, b.loss) << "epoch " << e;  // bitwise, not approximately
    EXPECT_EQ(a.train_accuracy, b.train_accuracy) << "epoch " << e;
    EXPECT_EQ(a.grad_norm, b.grad_norm) << "epoch " << e;
    EXPECT_EQ(a.learning_rate, b.learning_rate) << "epoch " << e;
  }
  // The parallelism fields are the one legitimate difference: the 4-thread
  // run must report the wider replica fan-out (batch_size 4 -> 4 replicas).
  EXPECT_EQ(serial.second.front().replicas, 1);
  EXPECT_EQ(parallel.second.front().replicas, 4);
  obs::training().clear();
  obs::set_enabled(was_enabled);
}

TEST(TrainerParallel, ReplicaBusySecondsRecorded) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const auto run = train_at(2);
  for (const obs::EpochRecord& e : run.second) {
    EXPECT_GT(e.replica_busy_seconds, 0.0);
  }
  obs::training().clear();
  obs::set_enabled(was_enabled);
}

}  // namespace
}  // namespace m2ai::core
