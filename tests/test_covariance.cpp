#include "dsp/covariance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/eig.hpp"
#include "rf/steering.hpp"
#include "util/rng.hpp"

namespace m2ai::dsp {
namespace {

// Snapshots of a single plane wave with random per-snapshot phase.
std::vector<std::vector<cdouble>> single_source_snapshots(double theta_deg, int n_ant,
                                                          int count,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  const auto a = rf::steering_vector(theta_deg, n_ant, 0.08, 0.33);
  std::vector<std::vector<cdouble>> snaps(static_cast<std::size_t>(count));
  for (auto& snap : snaps) {
    const cdouble s = std::polar(1.0, rng.uniform(0.0, 2.0 * M_PI));
    snap.resize(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) snap[i] = s * a[i];
  }
  return snaps;
}

TEST(Covariance, HermitianOutput) {
  const auto snaps = single_source_snapshots(70.0, 4, 16, 1);
  const CMatrix r = sample_covariance(snaps);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(std::abs(r(i, j) - std::conj(r(j, i))), 0.0, 1e-12);
    }
  }
}

TEST(Covariance, SingleSourceIsRankOne) {
  CovarianceOptions opts;
  opts.forward_backward = false;
  opts.diagonal_loading = 0.0;
  const auto snaps = single_source_snapshots(70.0, 4, 32, 2);
  const CMatrix r = sample_covariance(snaps, opts);
  const EigResult eig = eig_hermitian(r);
  EXPECT_GT(eig.values[0], 1.0);
  for (std::size_t k = 1; k < 4; ++k) EXPECT_NEAR(eig.values[k], 0.0, 1e-9);
}

TEST(Covariance, DiagonalLoadingRaisesFloor) {
  CovarianceOptions opts;
  opts.forward_backward = false;
  opts.diagonal_loading = 1e-3;
  const auto snaps = single_source_snapshots(70.0, 4, 32, 3);
  const CMatrix r = sample_covariance(snaps, opts);
  const EigResult eig = eig_hermitian(r);
  EXPECT_GT(eig.values[3], 0.0);
}

TEST(Covariance, UnitPowerSourceDiagonal) {
  CovarianceOptions opts;
  opts.forward_backward = false;
  opts.diagonal_loading = 0.0;
  const auto snaps = single_source_snapshots(55.0, 4, 64, 4);
  const CMatrix r = sample_covariance(snaps, opts);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(r(i, i).real(), 1.0, 1e-9);
}

TEST(Covariance, SmoothingShrinksAperture) {
  CovarianceOptions opts;
  opts.smoothing_subarray = 3;
  const auto snaps = single_source_snapshots(40.0, 4, 16, 5);
  const CMatrix r = sample_covariance(snaps, opts);
  EXPECT_EQ(r.rows(), 3u);
  EXPECT_EQ(r.cols(), 3u);
}

TEST(Covariance, SmoothingRestoresRankForCoherentSources) {
  // Two fully coherent plane waves (fixed relative phase across snapshots).
  const int n_ant = 4;
  const auto a1 = rf::steering_vector(45.0, n_ant, 0.08, 0.33);
  const auto a2 = rf::steering_vector(110.0, n_ant, 0.08, 0.33);
  std::vector<std::vector<cdouble>> snaps(16);
  util::Rng rng(6);
  for (auto& snap : snaps) {
    const cdouble s = std::polar(1.0, rng.uniform(0.0, 2.0 * M_PI));
    snap.resize(static_cast<std::size_t>(n_ant));
    for (int i = 0; i < n_ant; ++i) {
      snap[static_cast<std::size_t>(i)] =
          s * (a1[static_cast<std::size_t>(i)] +
               0.8 * a2[static_cast<std::size_t>(i)]);
    }
  }
  CovarianceOptions plain;
  plain.forward_backward = false;
  plain.diagonal_loading = 0.0;
  const EigResult eig_plain = eig_hermitian(sample_covariance(snaps, plain));
  // Coherent mixture: rank 1 (second eigenvalue negligible).
  EXPECT_LT(eig_plain.values[1] / eig_plain.values[0], 1e-9);

  CovarianceOptions smooth;
  smooth.forward_backward = true;
  smooth.smoothing_subarray = 3;
  smooth.diagonal_loading = 0.0;
  const EigResult eig_smooth = eig_hermitian(sample_covariance(snaps, smooth));
  // Smoothing + FB separates the coherent pair into a rank-2 subspace.
  EXPECT_GT(eig_smooth.values[1] / eig_smooth.values[0], 1e-3);
}

TEST(Covariance, RejectsEmptyAndRagged) {
  EXPECT_THROW(sample_covariance({}), std::invalid_argument);
  std::vector<std::vector<cdouble>> ragged{{cdouble{1, 0}, cdouble{0, 0}},
                                           {cdouble{1, 0}}};
  EXPECT_THROW(sample_covariance(ragged), std::invalid_argument);
}

TEST(Covariance, RejectsOversizedSubarray) {
  CovarianceOptions opts;
  opts.smoothing_subarray = 5;
  const auto snaps = single_source_snapshots(70.0, 4, 8, 7);
  EXPECT_THROW(sample_covariance(snaps, opts), std::invalid_argument);
}

}  // namespace
}  // namespace m2ai::dsp
