#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/json.hpp"

namespace m2ai::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_all();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_all();
  }
};

const SpanStats* find_span(const std::vector<SpanStats>& all, const std::string& name) {
  for (const SpanStats& s : all) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST_F(TraceTest, RecordsSingleSpan) {
  { M2AI_OBS_SPAN("solo"); }
  const auto all = spans().snapshot();
  const SpanStats* s = find_span(all, "solo");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->parent, "");
  EXPECT_EQ(s->depth, 0u);
  EXPECT_EQ(s->latency_ms.count, 1u);
  EXPECT_GE(s->latency_ms.min, 0.0);
}

TEST_F(TraceTest, NestedSpansTrackParentAndDepth) {
  {
    M2AI_OBS_SPAN("outer");
    {
      M2AI_OBS_SPAN("inner");
      { M2AI_OBS_SPAN("leaf"); }
    }
  }
  const auto all = spans().snapshot();
  const SpanStats* outer = find_span(all, "outer");
  const SpanStats* inner = find_span(all, "inner");
  const SpanStats* leaf = find_span(all, "leaf");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->parent, "outer");
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(leaf->parent, "inner");
  EXPECT_EQ(leaf->depth, 2u);
}

TEST_F(TraceTest, RepeatedSpanAggregatesCount) {
  for (int i = 0; i < 5; ++i) {
    M2AI_OBS_SPAN("repeat");
  }
  const auto all = spans().snapshot();
  const SpanStats* s = find_span(all, "repeat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->latency_ms.count, 5u);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  set_enabled(false);
  { M2AI_OBS_SPAN("ghost"); }
  EXPECT_TRUE(spans().snapshot().empty());
}

TEST_F(TraceTest, NullNameIsNoop) {
  { ScopedSpan span(nullptr); }
  EXPECT_TRUE(spans().snapshot().empty());
}

TEST_F(TraceTest, SpanTreeRendersNesting) {
  {
    M2AI_OBS_SPAN("root_span");
    { M2AI_OBS_SPAN("child_span"); }
  }
  const std::string tree = span_tree();
  const auto root_pos = tree.find("root_span");
  const auto child_pos = tree.find("  child_span");
  EXPECT_NE(root_pos, std::string::npos);
  EXPECT_NE(child_pos, std::string::npos) << tree;
  EXPECT_LT(root_pos, child_pos);
}

TEST_F(TraceTest, TelemetryRecordsEpochs) {
  training().record_epoch({1, 0.9, 0.5, 2.0, 1e-3, 0.25});
  training().record_epoch({2, 0.7, 0.6, 1.5, 1e-3, 0.24});
  const auto epochs = training().snapshot();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0].epoch, 1);
  EXPECT_DOUBLE_EQ(epochs[0].loss, 0.9);
  EXPECT_DOUBLE_EQ(epochs[1].train_accuracy, 0.6);
}

TEST_F(TraceTest, TelemetryDisabledIsNoop) {
  set_enabled(false);
  training().record_epoch({1, 0.9, 0.5, 2.0, 1e-3, 0.25});
  EXPECT_TRUE(training().snapshot().empty());
}

TEST_F(TraceTest, JsonExportContainsInstruments) {
  registry().counter("reader.readings").add(10);
  { M2AI_OBS_SPAN("music"); }
  training().record_epoch({1, 0.5, 0.8, 1.0, 1e-3, 0.1});
  const std::string json = to_json();
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"reader.readings\""), std::string::npos);
  EXPECT_NE(json.find("\"music\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"loss\""), std::string::npos) << json;
}

TEST_F(TraceTest, CsvExportIsLongFormat) {
  registry().counter("c1").add(4);
  { M2AI_OBS_SPAN("s1"); }
  const std::string csv = to_csv();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,c1,value,4"), std::string::npos) << csv;
  EXPECT_NE(csv.find("span,s1,count,1"), std::string::npos) << csv;
}

TEST_F(TraceTest, CsvQuotesNamesPerRfc4180) {
  // Regression: an unquoted comma/quote/newline in a metric name corrupted
  // every row after it. Fields are now RFC-4180 quoted.
  registry().counter("comma,name").add(1);
  registry().counter("quote\"name").add(2);
  registry().counter("newline\nname").add(3);
  registry().counter("plain").add(4);
  const std::string csv = to_csv();
  EXPECT_NE(csv.find("counter,\"comma,name\",value,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find("counter,\"quote\"\"name\",value,2"), std::string::npos) << csv;
  EXPECT_NE(csv.find("counter,\"newline\nname\",value,3"), std::string::npos) << csv;
  // Identifier-like names stay unquoted.
  EXPECT_NE(csv.find("counter,plain,value,4"), std::string::npos) << csv;
}

TEST_F(TraceTest, JsonExportParsesCleanly) {
  // The report must be valid JSON even with hostile instrument names —
  // validated with the in-repo parser rather than substring checks.
  registry().counter("weird\"name\\with\nescapes").add(7);
  registry().gauge("g").set(1.5);
  { M2AI_OBS_SPAN("parsed_span"); }
  training().record_epoch({1, 0.5, 0.8, 1.0, 1e-3, 0.1});

  const util::JsonValue doc = util::json_parse(to_json());
  EXPECT_DOUBLE_EQ(doc.at("schema_version").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(
      doc.at("counters").at("weird\"name\\with\nescapes").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("g").as_number(), 1.5);
  const util::JsonArray& spans_json = doc.at("spans").as_array();
  ASSERT_EQ(spans_json.size(), 1u);
  EXPECT_EQ(spans_json[0].at("name").as_string(), "parsed_span");
  EXPECT_GE(spans_json[0].at("p50_ms").as_number(), 0.0);
  const util::JsonArray& epochs = doc.at("training").at("epochs").as_array();
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(epochs[0].at("loss").as_number(), 0.5);
}

TEST_F(TraceTest, SpanRegistryClearKeepsEntriesHardClearDrops) {
  { M2AI_OBS_SPAN("sticky"); }
  spans().clear();
  auto all = spans().snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "sticky");
  EXPECT_EQ(all[0].latency_ms.count, 0u);
  spans().hard_clear();
  EXPECT_TRUE(spans().snapshot().empty());
}

}  // namespace
}  // namespace m2ai::obs
