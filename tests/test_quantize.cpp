// Int8 quantization unit suite (DESIGN.md §12): rounding and saturation
// edge cases of the symmetric per-tensor scheme, calibration range tracking
// (max-abs and percentile), the int32-overflow depth guard, scale-table
// serialization round-trips, and the layer-level quantized forwards against
// their float counterparts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "kern/backend.hpp"
#include "kern/kernels.hpp"
#include "kern/workspace.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/quantize.hpp"
#include "util/rng.hpp"

namespace m2ai {
namespace {

struct BackendGuard {
  kern::BackendKind saved = kern::active_backend_kind();
  ~BackendGuard() { kern::set_backend(saved); }
};

// Unique-enough temp path per test; removed on scope exit.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("m2ai_quant_test_" + name)).string()) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

TEST(Quantize, RoundsToNearestEvenAtTies) {
  // scale 1.0 -> the quantization grid is the integers; .5 ties must go to
  // the even neighbor (IEEE default rounding), not away from zero.
  EXPECT_EQ(nn::quantize_one_s8(2.5f, 1.0f), 2);
  EXPECT_EQ(nn::quantize_one_s8(3.5f, 1.0f), 4);
  EXPECT_EQ(nn::quantize_one_s8(-2.5f, 1.0f), -2);
  EXPECT_EQ(nn::quantize_one_s8(-3.5f, 1.0f), -4);
  EXPECT_EQ(nn::quantize_one_s8(0.5f, 1.0f), 0);
  EXPECT_EQ(nn::quantize_one_s8(1.5f, 1.0f), 2);
}

TEST(Quantize, SaturatesBeyondCalibratedRange) {
  // Values past +-max_abs (scale = max_abs/127) clamp to +-127 instead of
  // wrapping — the percentile mode depends on this.
  const float scale = 2.0f / 127.0f;
  const float inv = 1.0f / scale;
  EXPECT_EQ(nn::quantize_one_s8(2.0f, inv), 127);
  EXPECT_EQ(nn::quantize_one_s8(-2.0f, inv), -127);
  EXPECT_EQ(nn::quantize_one_s8(1000.0f, inv), 127);
  EXPECT_EQ(nn::quantize_one_s8(-1000.0f, inv), -127);
  // Inside the range the mapping is monotone and symmetric.
  EXPECT_EQ(nn::quantize_one_s8(1.0f, inv), 64);
  EXPECT_EQ(nn::quantize_one_s8(-1.0f, inv), -64);
}

TEST(Quantize, AllZeroTensorQuantizesWithoutDivByZero) {
  nn::Tensor t({4, 4});  // zero-initialized
  const nn::QuantTensor q = nn::quantize_tensor(t, nn::CalibrationOptions{});
  EXPECT_EQ(q.scale, 0.0f);
  for (std::size_t i = 0; i < q.q.size(); ++i) EXPECT_EQ(q.q[i], 0);

  // A zero-scale activation stream likewise quantizes to all-zero without
  // NaN/inf: inv_scale is defined as 0 when scale == 0.
  std::vector<float> x(8, 0.0f);
  std::vector<std::int8_t> xq(8, 99);
  nn::quantize_s8(x.data(), x.size(), /*scale=*/0.0f, xq.data());
  for (std::int8_t v : xq) EXPECT_EQ(v, 0);
}

TEST(Quantize, ZeroScaleGemvOutputIsExactlyBias) {
  // End-to-end zero-range case: the requantize epilogue multiplies the int32
  // accumulator by scale 0, so the output must be bitwise the bias.
  const int rows = 3, cols = 4;
  std::vector<std::int8_t> w(static_cast<std::size_t>(rows) * cols, 13);
  std::vector<std::int8_t> x(static_cast<std::size_t>(cols), 0);
  const std::vector<float> bias = {0.25f, -3.5f, 1e-30f};
  std::vector<float> y(static_cast<std::size_t>(rows), 42.0f);
  kern::gemv_s8(w.data(), x.data(), bias.data(), y.data(), rows, cols,
                /*scale=*/0.0f);
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(y[static_cast<std::size_t>(r)], bias[static_cast<std::size_t>(r)]);
  }
}

TEST(Quantize, DepthGuardRejectsOverflowableAccumulation) {
  // kMaxS8Depth * 127 * 127 is the last depth whose worst-case |acc| fits
  // int32; one past it must throw.
  EXPECT_NO_THROW(nn::check_s8_depth(kern::kMaxS8Depth, "test"));
  EXPECT_NO_THROW(nn::check_s8_depth(1, "test"));
  EXPECT_THROW(nn::check_s8_depth(kern::kMaxS8Depth + 1, "test"),
               std::invalid_argument);
  // The bound itself is what the guard promises: worst case fits int32.
  const std::int64_t worst =
      static_cast<std::int64_t>(kern::kMaxS8Depth) * 127 * 127;
  EXPECT_LE(worst, static_cast<std::int64_t>(2147483647));
}

TEST(Quantize, SaturatedInputsAccumulateExactlyAndMatchInt8Table) {
  // All-(+-127) operands at a depth near the model's largest (merge Dense
  // input) produce the worst-case int32 accumulator; the scalar reference
  // and the int8 backend's kernels must agree BITWISE on the float output.
  BackendGuard guard;
  const int rows = 4, cols = 960;
  std::vector<std::int8_t> w(static_cast<std::size_t>(rows) * cols);
  std::vector<std::int8_t> x(static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = (i % 2 == 0) ? 127 : -127;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = (i % 3 == 0) ? -127 : 127;
  const std::vector<float> bias = {0.1f, -0.2f, 0.3f, -0.4f};
  const float scale = 1.7e-4f;

  std::vector<float> y_ref(static_cast<std::size_t>(rows), -1.0f);
  std::vector<float> y_int8(static_cast<std::size_t>(rows), 1.0f);
  kern::gemv_s8(w.data(), x.data(), bias.data(), y_ref.data(), rows, cols, scale);
  kern::int8_backend().gemv_s8(w.data(), x.data(), bias.data(), y_int8.data(),
                               rows, cols, scale);
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(y_ref[static_cast<std::size_t>(r)],
              y_int8[static_cast<std::size_t>(r)])
        << "row " << r;
  }
}

TEST(Quantize, RangeTrackerMaxAbsAndPercentile) {
  nn::RangeTracker tracker;
  std::vector<float> xs;
  // 999 values in [0.001, 0.999] plus one 100.0 outlier.
  for (int i = 1; i < 1000; ++i) xs.push_back(static_cast<float>(i) / 1000.0f);
  xs.push_back(100.0f);
  tracker.observe(xs.data(), xs.size());
  EXPECT_EQ(tracker.count(), xs.size());
  EXPECT_FLOAT_EQ(tracker.max_abs(), 100.0f);

  nn::CalibrationOptions max_abs;
  max_abs.mode = nn::CalibMode::kMaxAbs;
  EXPECT_FLOAT_EQ(tracker.scale(max_abs), 100.0f / 127.0f);

  // The 99th percentile ignores the outlier: range is near 0.99, not 100.
  nn::CalibrationOptions pct;
  pct.mode = nn::CalibMode::kPercentile;
  pct.percentile = 99.0;
  const float pct_scale = tracker.scale(pct);
  EXPECT_GT(pct_scale, 0.9f / 127.0f);
  EXPECT_LT(pct_scale, 1.1f / 127.0f);
}

TEST(Quantize, QuantScalesSaveLoadRoundTripIsBitwise) {
  nn::QuantScales scales;
  scales.mode = nn::CalibMode::kPercentile;
  scales.percentile = 99.9;
  scales.scales["act.merge_in"] = 0.0123456789f;
  scales.scales["act.lstm1_xh"] = 1.5e-30f;  // subnormal-ish magnitude
  scales.scales["w.p0.pseudo.conv1.weight"] = 3.0f;
  scales.scales["zero"] = 0.0f;

  TempFile tmp("roundtrip.quant");
  nn::save_quant_scales(tmp.path, scales);
  const nn::QuantScales loaded = nn::load_quant_scales(tmp.path);
  EXPECT_EQ(loaded.mode, scales.mode);
  EXPECT_EQ(loaded.percentile, scales.percentile);
  ASSERT_EQ(loaded.scales.size(), scales.scales.size());
  for (const auto& [name, value] : scales.scales) {
    // Hexfloat serialization: bitwise, not approximate.
    ASSERT_TRUE(loaded.scales.count(name)) << name;
    EXPECT_EQ(loaded.scales.at(name), value) << name;
  }

  // Whitespace in a name cannot survive the whitespace-delimited format;
  // save must reject it rather than write a table that misloads.
  nn::QuantScales bad;
  bad.scales["has a space"] = 1.0f;
  TempFile tmp_bad("bad_name.quant");
  EXPECT_THROW(nn::save_quant_scales(tmp_bad.path, bad), std::invalid_argument);
}

TEST(Quantize, LoadRejectsCorruptFiles) {
  const auto write_and_load = [](const std::string& name,
                                 const std::string& contents) {
    TempFile tmp(name);
    std::ofstream out(tmp.path, std::ios::binary);
    out << contents;
    out.close();
    return nn::load_quant_scales(tmp.path);
  };
  EXPECT_THROW(write_and_load("bad_magic", "not-a-quant-file\n"),
               std::runtime_error);
  EXPECT_THROW(write_and_load("bad_mode", "m2ai-quant-v1\nmode banana 0x1p0\n"),
               std::runtime_error);
  EXPECT_THROW(
      write_and_load("bad_scale",
                     "m2ai-quant-v1\nmode max_abs 0x1.8f9aa2p+6\nscale a nan\n"),
      std::runtime_error);
  EXPECT_THROW(
      write_and_load("neg_scale",
                     "m2ai-quant-v1\nmode max_abs 0x1.8f9aa2p+6\nscale a -0x1p0\n"),
      std::runtime_error);
  EXPECT_THROW(write_and_load("unknown_record",
                              "m2ai-quant-v1\nmode max_abs 0x1.8f9aa2p+6\n"
                              "frobnicate a 0x1p0\n"),
               std::runtime_error);
  EXPECT_THROW(nn::load_quant_scales("/nonexistent/path/x.quant"),
               std::runtime_error);
}

TEST(Quantize, DenseForwardQuantTracksFloatWithinQuantizationError) {
  BackendGuard guard;
  kern::set_backend(kern::BackendKind::kInt8);
  util::Rng rng(201);
  const int in = 33, out = 17;  // non-multiples of the vector width
  nn::Dense dense(in, out, rng);

  nn::Tensor x({in});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  nn::RangeTracker tracker;
  tracker.observe(x);
  nn::CalibrationOptions opts;
  dense.prepare_quant(tracker.scale(opts), opts);
  ASSERT_TRUE(dense.quant_ready());

  kern::Workspace ws;
  const nn::Tensor yq = dense.forward_quant(x, ws);
  const nn::Tensor yf = dense.forward(x, /*train=*/false);
  ASSERT_EQ(yq.size(), yf.size());
  // Error budget: each of the `in` products carries ~(w_scale + x_scale)/2
  // relative rounding; with unit-normal data the empirical bound is ~1e-1
  // absolute. This is deliberately loose — the tight end-to-end statement is
  // the label-agreement gate in test_kern_backend.
  for (std::size_t i = 0; i < yf.size(); ++i) {
    EXPECT_NEAR(yq[i], yf[i], 0.15f) << "out " << i;
  }
  dense.clear_quant();
  EXPECT_FALSE(dense.quant_ready());
}

TEST(Quantize, LstmForwardBatchQuantTracksFloat) {
  BackendGuard guard;
  kern::set_backend(kern::BackendKind::kInt8);
  util::Rng rng(202);
  const int input = 12, hidden = 8, t_len = 6;
  nn::Lstm lstm(input, hidden, rng);

  std::vector<std::vector<nn::Tensor>> seqs(3);
  nn::RangeTracker xh;
  for (auto& seq : seqs) {
    for (int t = 0; t < t_len; ++t) {
      nn::Tensor x({input});
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(rng.normal());
      }
      xh.observe(x);
      seq.push_back(std::move(x));
    }
  }
  // Hidden states live in (-1, 1); cover them in the range without running
  // the float forward first.
  const std::vector<float> unit = {1.0f};
  xh.observe(unit.data(), unit.size());

  nn::CalibrationOptions opts;
  lstm.prepare_quant(xh.scale(opts), opts);
  ASSERT_TRUE(lstm.quant_ready());

  std::vector<const std::vector<nn::Tensor>*> ptrs;
  for (const auto& s : seqs) ptrs.push_back(&s);
  const auto hq = lstm.forward_batch_quant(ptrs);
  const auto hf = lstm.forward_batch(ptrs);
  ASSERT_EQ(hq.size(), hf.size());
  for (std::size_t b = 0; b < hf.size(); ++b) {
    ASSERT_EQ(hq[b].size(), hf[b].size());
    for (std::size_t t = 0; t < hf[b].size(); ++t) {
      for (std::size_t u = 0; u < hf[b][t].size(); ++u) {
        // Gate pre-activations carry quantization error through tanh/sigmoid
        // (both 1-Lipschitz), recurrently over t_len steps.
        EXPECT_NEAR(hq[b][t][u], hf[b][t][u], 0.2f)
            << "seq " << b << " t " << t << " u " << u;
      }
    }
  }
}

TEST(Quantize, CalibModeNamesRoundTripAndReject) {
  EXPECT_STREQ(nn::calib_mode_name(nn::CalibMode::kMaxAbs), "max_abs");
  EXPECT_STREQ(nn::calib_mode_name(nn::CalibMode::kPercentile), "percentile");
  EXPECT_EQ(nn::calib_mode_from_name("max_abs"), nn::CalibMode::kMaxAbs);
  EXPECT_EQ(nn::calib_mode_from_name("percentile"), nn::CalibMode::kPercentile);
  EXPECT_THROW(nn::calib_mode_from_name("int4"), std::invalid_argument);
}

}  // namespace
}  // namespace m2ai
