#include "sim/scene.hpp"

#include <gtest/gtest.h>

#include "sim/activities.hpp"

namespace m2ai::sim {
namespace {

Scene make_scene(int persons, int tags) {
  Environment env = Environment::laboratory();
  ArrayGeometry array;
  array.center = Vec3{env.width / 2.0, 0.4, 1.25};
  util::Rng rng(5);
  auto people = instantiate_activity(2, persons, env, array.origin2d(), {}, rng);
  return Scene(env, std::move(people), array, tags);
}

TEST(ArrayGeometry, AntennaPositionsCenteredAlongAxis) {
  ArrayGeometry array;
  array.center = Vec3{5.0, 1.0, 1.25};
  array.num_antennas = 4;
  array.separation_m = 0.04;
  const Vec3 a0 = array.antenna_position(0);
  const Vec3 a3 = array.antenna_position(3);
  EXPECT_NEAR(a0.x, 5.0 - 0.06, 1e-12);
  EXPECT_NEAR(a3.x, 5.0 + 0.06, 1e-12);
  EXPECT_DOUBLE_EQ(a0.y, 1.0);
  EXPECT_DOUBLE_EQ(a0.z, 1.25);
  // Uniform spacing.
  for (int n = 1; n < 4; ++n) {
    EXPECT_NEAR(array.antenna_position(n).x - array.antenna_position(n - 1).x, 0.04,
                1e-12);
  }
}

TEST(Scene, TagCountAndAssignment) {
  Scene scene = make_scene(2, 3);
  ASSERT_EQ(scene.tags().size(), 6u);
  EXPECT_EQ(scene.tags()[0].id, 1u);
  EXPECT_EQ(scene.tags()[5].id, 6u);
  EXPECT_EQ(scene.tags()[0].person_index, 0);
  EXPECT_EQ(scene.tags()[3].person_index, 1);
  EXPECT_EQ(scene.tags()[0].site, BodySite::kHand);
  EXPECT_EQ(scene.tags()[2].site, BodySite::kShoulder);
}

TEST(Scene, SingleTagPerPersonIsHand) {
  Scene scene = make_scene(2, 1);
  ASSERT_EQ(scene.tags().size(), 2u);
  EXPECT_EQ(scene.tags()[0].site, BodySite::kHand);
  EXPECT_EQ(scene.tags()[1].site, BodySite::kHand);
}

TEST(Scene, RejectsBadTagCount) {
  Environment env = Environment::laboratory();
  util::Rng rng(6);
  auto people = instantiate_activity(1, 1, env, {6.9, 0.4}, {}, rng);
  EXPECT_THROW(Scene(env, people, ArrayGeometry{}, 0), std::out_of_range);
  EXPECT_THROW(Scene(env, people, ArrayGeometry{}, 4), std::out_of_range);
}

TEST(Scene, FrozenMotionPinsPositions) {
  Scene scene = make_scene(2, 3);
  scene.set_motion_frozen(true);
  const Vec3 a = scene.tag_position(0, 0.0);
  const Vec3 b = scene.tag_position(0, 5.0);
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.z, b.z);
  scene.set_motion_frozen(false);
  const Vec3 c = scene.tag_position(0, 5.0);
  EXPECT_NE(a.x, c.x);  // person 0 in A_02 paces
}

TEST(Scene, BodiesMatchPersons) {
  Scene scene = make_scene(3, 2);
  const auto bodies = scene.bodies_at(1.0);
  ASSERT_EQ(bodies.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bodies[i].person_index, static_cast<int>(i));
    EXPECT_GT(bodies[i].radius, 0.1);
  }
}

TEST(Scene, PathsExistForEveryTagAntennaPair) {
  Scene scene = make_scene(2, 3);
  for (std::size_t tag = 0; tag < scene.tags().size(); ++tag) {
    for (int ant = 0; ant < 4; ++ant) {
      EXPECT_FALSE(scene.paths_at(tag, ant, 0.5).empty());
    }
  }
}

TEST(Scene, TagGainModulatesPathGains) {
  // Same geometry, but a person turned away yields weaker paths.
  Environment env = Environment::open_space();
  ArrayGeometry array;
  array.center = Vec3{0.0, 0.0, 1.25};
  BodyParams body;
  MotionSpec still;
  Person facing(body, {0.0, 4.0}, -M_PI / 2.0, still);  // faces the array
  Person away(body, {0.0, 4.0}, M_PI / 2.0, still);     // faces away
  Scene scene_facing(env, {facing}, array, 1);
  Scene scene_away(env, {away}, array, 1);
  const auto p_facing = scene_facing.paths_at(0, 0, 0.0);
  const auto p_away = scene_away.paths_at(0, 0, 0.0);
  ASSERT_FALSE(p_facing.empty());
  ASSERT_FALSE(p_away.empty());
  EXPECT_GT(p_facing[0].gain, p_away[0].gain * 1.5);
}

}  // namespace
}  // namespace m2ai::sim
