#include "sim/environment.hpp"

#include <gtest/gtest.h>

namespace m2ai::sim {
namespace {

TEST(Environment, LaboratoryMatchesPaperDimensions) {
  const Environment lab = Environment::laboratory();
  EXPECT_DOUBLE_EQ(lab.width, 13.75);
  EXPECT_DOUBLE_EQ(lab.depth, 10.50);
  EXPECT_EQ(lab.walls.size(), 4u);
  EXPECT_FALSE(lab.scatterers.empty());  // high multipath: cluttered
}

TEST(Environment, HallMatchesPaperDimensions) {
  const Environment hall = Environment::hall();
  EXPECT_DOUBLE_EQ(hall.width, 8.75);
  EXPECT_DOUBLE_EQ(hall.depth, 7.50);
  EXPECT_EQ(hall.walls.size(), 4u);
  EXPECT_TRUE(hall.scatterers.empty());  // low multipath: empty room
}

TEST(Environment, LabHasMoreMultipathThanHall) {
  EXPECT_GT(Environment::laboratory().scatterers.size(),
            Environment::hall().scatterers.size());
}

TEST(Environment, ScatterersInsideRoom) {
  const Environment lab = Environment::laboratory();
  for (const Scatterer& s : lab.scatterers) {
    EXPECT_GT(s.position.x, 0.0);
    EXPECT_LT(s.position.x, lab.width);
    EXPECT_GT(s.position.y, 0.0);
    EXPECT_LT(s.position.y, lab.depth);
    EXPECT_GT(s.radius, 0.0);
  }
}

TEST(Environment, WallsEncloseRoom) {
  const Environment lab = Environment::laboratory();
  int vertical = 0, horizontal = 0;
  for (const rf::Wall& w : lab.walls) {
    (w.vertical ? vertical : horizontal)++;
    EXPECT_GE(w.reflection_loss_db, 0.0);
  }
  EXPECT_EQ(vertical, 2);
  EXPECT_EQ(horizontal, 2);
}

TEST(Environment, OpenSpaceIsEmpty) {
  const Environment open = Environment::open_space();
  EXPECT_TRUE(open.walls.empty());
  EXPECT_TRUE(open.scatterers.empty());
}

}  // namespace
}  // namespace m2ai::sim
