#include "nn/softmax.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m2ai::nn {
namespace {

TEST(Softmax, SumsToOne) {
  const Tensor p = softmax(Tensor::from({1.0f, 2.0f, 3.0f}));
  EXPECT_NEAR(p.sum(), 1.0f, 1e-6);
  // Monotone in the logits.
  EXPECT_LT(p.at(0), p.at(1));
  EXPECT_LT(p.at(1), p.at(2));
}

TEST(Softmax, InvariantToShift) {
  const Tensor a = softmax(Tensor::from({1.0f, 2.0f}));
  const Tensor b = softmax(Tensor::from({101.0f, 102.0f}));
  EXPECT_NEAR(a.at(0), b.at(0), 1e-6);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Tensor p = softmax(Tensor::from({1000.0f, 0.0f}));
  EXPECT_NEAR(p.at(0), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(p.at(1)));
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  const auto lag = softmax_cross_entropy(Tensor::from({0.0f, 0.0f, 0.0f, 0.0f}), 2);
  EXPECT_NEAR(lag.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientIsProbMinusOneHot) {
  const Tensor logits = Tensor::from({0.3f, -0.2f, 1.1f});
  const Tensor p = softmax(logits);
  const auto lag = softmax_cross_entropy(logits, 1);
  EXPECT_NEAR(lag.grad_logits.at(0), p.at(0), 1e-6);
  EXPECT_NEAR(lag.grad_logits.at(1), p.at(1) - 1.0f, 1e-6);
  EXPECT_NEAR(lag.grad_logits.at(2), p.at(2), 1e-6);
  // Gradient sums to zero.
  EXPECT_NEAR(lag.grad_logits.sum(), 0.0f, 1e-6);
}

TEST(SoftmaxCrossEntropy, PredictedIsArgmax) {
  const auto lag = softmax_cross_entropy(Tensor::from({0.1f, 5.0f, -3.0f}), 0);
  EXPECT_EQ(lag.predicted, 1);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectHasLowLoss) {
  const auto good = softmax_cross_entropy(Tensor::from({10.0f, 0.0f}), 0);
  const auto bad = softmax_cross_entropy(Tensor::from({10.0f, 0.0f}), 1);
  EXPECT_LT(good.loss, 0.01);
  EXPECT_GT(bad.loss, 5.0);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabel) {
  EXPECT_THROW(softmax_cross_entropy(Tensor::from({1.0f, 2.0f}), 2), std::out_of_range);
  EXPECT_THROW(softmax_cross_entropy(Tensor::from({1.0f, 2.0f}), -1), std::out_of_range);
}

}  // namespace
}  // namespace m2ai::nn
