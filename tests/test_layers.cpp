#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/gradcheck.hpp"
#include "nn/pool.hpp"
#include "nn/softmax.hpp"

namespace m2ai::nn {
namespace {

Tensor random_tensor(std::vector<int> shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  t.randomize_normal(rng, 1.0f);
  return t;
}

// Scalar pseudo-loss: sum of squares / 2 -> grad is the output itself.
double half_square(const Tensor& y) {
  double s = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) s += 0.5 * y[i] * y[i];
  return s;
}

TEST(Dense, ForwardKnownValues) {
  util::Rng rng(1);
  Dense layer(2, 2, rng);
  auto params = layer.params();
  // W = [[1, 2], [3, 4]], b = [0.5, -0.5].
  params[0]->value[0] = 1;
  params[0]->value[1] = 2;
  params[0]->value[2] = 3;
  params[0]->value[3] = 4;
  params[1]->value[0] = 0.5f;
  params[1]->value[1] = -0.5f;
  const Tensor y = layer.forward(Tensor::from({1.0f, 1.0f}), false);
  EXPECT_FLOAT_EQ(y.at(0), 3.5f);
  EXPECT_FLOAT_EQ(y.at(1), 6.5f);
}

TEST(Dense, FlattensHigherRankInput) {
  util::Rng rng(2);
  Dense layer(6, 3, rng);
  Tensor x({2, 3});
  EXPECT_EQ(layer.forward(x, false).size(), 3u);
}

TEST(Dense, RejectsWrongSize) {
  util::Rng rng(3);
  Dense layer(4, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({3}), false), std::invalid_argument);
}

TEST(Dense, GradCheck) {
  util::Rng rng(4);
  Dense layer(5, 3, rng);
  const Tensor x = random_tensor({5}, rng);
  auto loss_fn = [&]() {
    layer.clear_cache();
    const Tensor y = layer.forward(x, true);
    const double loss = half_square(y);
    layer.backward(y);
    return loss;
  };
  const auto result = check_param_gradients(loss_fn, layer.params());
  EXPECT_TRUE(result.ok) << "max rel err " << result.max_rel_error;
}

TEST(Dense, InputGradCheck) {
  util::Rng rng(5);
  Dense layer(4, 4, rng);
  const Tensor x = random_tensor({4}, rng);
  layer.clear_cache();
  const Tensor y = layer.forward(x, true);
  const Tensor gin = layer.backward(y);
  auto run = [&](const Tensor& input) {
    return half_square(layer.forward(input, false));
  };
  const auto result = check_input_gradient(run, x, gin);
  EXPECT_TRUE(result.ok) << "max rel err " << result.max_rel_error;
}

TEST(Dense, LifoCacheSupportsWeightSharing) {
  util::Rng rng(6);
  Dense layer(3, 2, rng);
  const Tensor x1 = random_tensor({3}, rng);
  const Tensor x2 = random_tensor({3}, rng);
  const Tensor y1 = layer.forward(x1, true);
  const Tensor y2 = layer.forward(x2, true);
  // Pop in reverse order without error; grads accumulate across pops.
  layer.backward(y2);
  layer.backward(y1);
  EXPECT_GT(layer.params()[0]->grad.l2_norm(), 0.0f);
  EXPECT_THROW(layer.backward(y1), std::logic_error);  // cache exhausted
}

TEST(Conv1d, OutputLengthFormula) {
  util::Rng rng(7);
  Conv1d conv(1, 1, 3, 2, 1, rng);
  EXPECT_EQ(conv.output_length(10), 5);
  Conv1d conv2(1, 1, 7, 2, 3, rng);
  EXPECT_EQ(conv2.output_length(180), 90);
}

TEST(Conv1d, IdentityKernel) {
  util::Rng rng(8);
  Conv1d conv(1, 1, 1, 1, 0, rng);
  conv.params()[0]->value[0] = 1.0f;  // single weight
  conv.params()[1]->value[0] = 0.0f;
  Tensor x({1, 5});
  for (int i = 0; i < 5; ++i) x.at(0, i) = static_cast<float>(i);
  const Tensor y = conv.forward(x, false);
  for (int i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(y.at(0, i), static_cast<float>(i));
}

TEST(Conv1d, KnownConvolution) {
  util::Rng rng(9);
  Conv1d conv(1, 1, 3, 1, 1, rng);
  auto* w = conv.params()[0];
  w->value[0] = 1.0f;
  w->value[1] = 0.0f;
  w->value[2] = -1.0f;
  conv.params()[1]->value[0] = 0.0f;
  Tensor x({1, 4});
  x.at(0, 0) = 1;
  x.at(0, 1) = 2;
  x.at(0, 2) = 4;
  x.at(0, 3) = 8;
  const Tensor y = conv.forward(x, false);
  // Padded input: 0 1 2 4 8 0 ; y[i] = x[i-1] - x[i+1].
  EXPECT_FLOAT_EQ(y.at(0, 0), -2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), -6.0f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 4.0f);
}

TEST(Conv1d, GradCheck) {
  util::Rng rng(10);
  Conv1d conv(2, 3, 3, 2, 1, rng);
  const Tensor x = random_tensor({2, 9}, rng);
  auto loss_fn = [&]() {
    conv.clear_cache();
    const Tensor y = conv.forward(x, true);
    const double loss = half_square(y);
    conv.backward(y);
    return loss;
  };
  const auto result = check_param_gradients(loss_fn, conv.params());
  EXPECT_TRUE(result.ok) << "max rel err " << result.max_rel_error;
}

TEST(Conv1d, InputGradCheck) {
  util::Rng rng(11);
  Conv1d conv(2, 2, 3, 1, 1, rng);
  const Tensor x = random_tensor({2, 6}, rng);
  conv.clear_cache();
  const Tensor y = conv.forward(x, true);
  const Tensor gin = conv.backward(y);
  auto run = [&](const Tensor& input) {
    return half_square(conv.forward(input, false));
  };
  const auto result = check_input_gradient(run, x, gin);
  EXPECT_TRUE(result.ok) << "max rel err " << result.max_rel_error;
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor y = relu.forward(Tensor::from({-1.0f, 0.0f, 2.0f}), false);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(2), 2.0f);
}

TEST(ReLU, BackwardMasksNegatives) {
  ReLU relu;
  const Tensor x = Tensor::from({-1.0f, 3.0f});
  relu.forward(x, true);
  const Tensor g = relu.backward(Tensor::from({5.0f, 7.0f}));
  EXPECT_FLOAT_EQ(g.at(0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(1), 7.0f);
}

TEST(Tanh, ForwardAndGradient) {
  Tanh tanh_layer;
  const Tensor x = Tensor::from({0.5f});
  const Tensor y = tanh_layer.forward(x, true);
  EXPECT_NEAR(y.at(0), std::tanh(0.5f), 1e-6);
  const Tensor g = tanh_layer.backward(Tensor::from({1.0f}));
  EXPECT_NEAR(g.at(0), 1.0f - y.at(0) * y.at(0), 1e-6);
}

TEST(MaxPool1d, ForwardSelectsMax) {
  MaxPool1d pool(2);
  Tensor x({1, 4});
  x.at(0, 0) = 1;
  x.at(0, 1) = 5;
  x.at(0, 2) = 2;
  x.at(0, 3) = 0;
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
}

TEST(MaxPool1d, BackwardRoutesToArgmax) {
  MaxPool1d pool(2);
  Tensor x({1, 4});
  x.at(0, 1) = 5;
  x.at(0, 2) = 2;
  pool.forward(x, true);
  Tensor g({1, 2});
  g.at(0, 0) = 1.0f;
  g.at(0, 1) = 2.0f;
  const Tensor gin = pool.backward(g);
  EXPECT_FLOAT_EQ(gin.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gin.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(gin.at(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(gin.at(0, 3), 0.0f);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout drop(0.5, util::Rng(12));
  const Tensor x = Tensor::from({1, 2, 3});
  const Tensor y = drop.forward(x, false);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainDropsAndRescales) {
  Dropout drop(0.5, util::Rng(13));
  Tensor x({10000});
  x.fill(1.0f);
  const Tensor y = drop.forward(x, true);
  int zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // inverted dropout scale 1/(1-0.5)
    }
    sum += y[i];
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.06);  // expectation preserved
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5, util::Rng(14));
  Tensor x({100});
  x.fill(1.0f);
  const Tensor y = drop.forward(x, true);
  Tensor g({100});
  g.fill(1.0f);
  const Tensor gin = drop.backward(g);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(gin[i], y[i]);  // same positions dropped / scaled
  }
}

}  // namespace
}  // namespace m2ai::nn
