#include "core/pipeline.hpp"

#include <gtest/gtest.h>

namespace m2ai::core {
namespace {

PipelineConfig quick_config() {
  PipelineConfig config;
  config.windows_per_sample = 4;
  config.bootstrap_sec = 4.0;  // short bootstrap keeps the test fast
  return config;
}

TEST(Pipeline, SampleHasExpectedShape) {
  Pipeline pipeline(quick_config(), 1);
  const Sample s = pipeline.simulate_sample(3);
  EXPECT_EQ(s.activity_id, 3);
  EXPECT_EQ(s.label, 2);
  ASSERT_EQ(s.frames.size(), 4u);
  EXPECT_EQ(s.frames[0].pseudo.dim(0), 6);  // 2 persons x 3 tags
  EXPECT_EQ(s.frames[0].pseudo.dim(1), 180);
  EXPECT_EQ(s.frames[0].aux.dim(1), 4);
}

TEST(Pipeline, FramesCarrySignal) {
  Pipeline pipeline(quick_config(), 2);
  const Sample s = pipeline.simulate_sample(1);
  float total = 0.0f;
  for (const auto& f : s.frames) total += f.pseudo.flattened().l2_norm();
  EXPECT_GT(total, 1.0f);
}

TEST(Pipeline, DeterministicForSeed) {
  Pipeline a(quick_config(), 7);
  Pipeline b(quick_config(), 7);
  const Sample sa = a.simulate_sample(5);
  const Sample sb = b.simulate_sample(5);
  ASSERT_EQ(sa.frames.size(), sb.frames.size());
  for (std::size_t t = 0; t < sa.frames.size(); ++t) {
    for (std::size_t i = 0; i < sa.frames[t].pseudo.size(); ++i) {
      EXPECT_EQ(sa.frames[t].pseudo[i], sb.frames[t].pseudo[i]);
    }
  }
}

TEST(Pipeline, DifferentSeedsVary) {
  Pipeline a(quick_config(), 7);
  Pipeline b(quick_config(), 8);
  const Sample sa = a.simulate_sample(5);
  const Sample sb = b.simulate_sample(5);
  float diff = 0.0f;
  for (std::size_t i = 0; i < sa.frames[0].pseudo.size(); ++i) {
    diff += std::abs(sa.frames[0].pseudo[i] - sb.frames[0].pseudo[i]);
  }
  EXPECT_GT(diff, 0.1f);
}

TEST(Pipeline, CalibratorBuiltWhenEnabled) {
  Pipeline pipeline(quick_config(), 3);
  pipeline.simulate_sample(1);
  ASSERT_NE(pipeline.last_calibrator(), nullptr);
  EXPECT_NE(pipeline.last_calibrator()->table(1, 0), nullptr);
}

TEST(Pipeline, NoCalibratorWhenDisabled) {
  PipelineConfig config = quick_config();
  config.phase_calibration = false;
  Pipeline pipeline(config, 3);
  pipeline.simulate_sample(1);
  EXPECT_EQ(pipeline.last_calibrator(), nullptr);
}

TEST(Pipeline, NumTagsFollowsConfig) {
  PipelineConfig config = quick_config();
  config.num_persons = 3;
  config.tags_per_person = 2;
  Pipeline pipeline(config, 4);
  EXPECT_EQ(pipeline.num_tags(), 6);
  const Sample s = pipeline.simulate_sample(2);
  EXPECT_EQ(s.frames[0].pseudo.dim(0), 6);
}

TEST(Pipeline, AntennaCountPropagates) {
  PipelineConfig config = quick_config();
  config.num_antennas = 2;
  Pipeline pipeline(config, 5);
  const Sample s = pipeline.simulate_sample(1);
  EXPECT_EQ(s.frames[0].aux.dim(1), 2);
}

TEST(Pipeline, HallEnvironmentWorks) {
  PipelineConfig config = quick_config();
  config.environment = EnvironmentKind::kHall;
  Pipeline pipeline(config, 6);
  const Sample s = pipeline.simulate_sample(4);
  EXPECT_EQ(s.frames.size(), 4u);
}

TEST(Pipeline, ReportsExposedForInspection) {
  Pipeline pipeline(quick_config(), 9);
  pipeline.simulate_sample(1);
  EXPECT_FALSE(pipeline.last_reports().empty());
}

TEST(MakeEnvironment, MapsKinds) {
  EXPECT_EQ(make_environment(EnvironmentKind::kLaboratory).name, "laboratory");
  EXPECT_EQ(make_environment(EnvironmentKind::kHall).name, "hall");
}

}  // namespace
}  // namespace m2ai::core
