#include "rf/steering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/constants.hpp"

namespace m2ai::rf {
namespace {

TEST(Steering, FirstElementIsUnity) {
  const auto a = steering_vector(37.0, 4, 0.08, 0.33);
  const cdouble one{1.0, 0.0};
  EXPECT_NEAR(std::abs(a[0] - one), 0.0, 1e-12);
}

TEST(Steering, AllElementsUnitMagnitude) {
  const auto a = steering_vector(63.0, 6, 0.08, 0.33);
  for (const auto& v : a) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Steering, BroadsideHasZeroPhaseProgression) {
  const auto a = steering_vector(90.0, 4, 0.08, 0.33);
  for (const auto& v : a) {
    EXPECT_NEAR(std::arg(v), 0.0, 1e-9);
  }
}

TEST(Steering, PhaseIncrementMatchesFormula) {
  const double d = 0.08, lambda = 0.33, theta = 40.0;
  const auto a = steering_vector(theta, 4, d, lambda);
  const double expected =
      2.0 * M_PI * d / lambda * std::cos(theta * M_PI / 180.0);
  for (int n = 1; n < 4; ++n) {
    const double inc = std::arg(a[static_cast<std::size_t>(n)] /
                                a[static_cast<std::size_t>(n - 1)]);
    EXPECT_NEAR(inc, expected, 1e-9);
  }
}

TEST(Steering, EndfireAnglesAreConjugates) {
  const auto a0 = steering_vector(30.0, 4, 0.08, 0.33);
  const auto a1 = steering_vector(150.0, 4, 0.08, 0.33);  // cos flips sign
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_NEAR(std::abs(a0[n] - std::conj(a1[n])), 0.0, 1e-9);
  }
}

TEST(Steering, EffectiveSeparationIsRoundTrip) {
  EXPECT_DOUBLE_EQ(effective_separation(kAntennaSeparationM), 0.08);
  // Round-trip aperture stays within lambda/4: increments within [-pi/2, pi/2].
  const double max_inc = 2.0 * M_PI * effective_separation(kAntennaSeparationM) /
                         kTypicalWavelengthM;
  EXPECT_LT(max_inc, M_PI / 2.0 * 1.05);
}

TEST(Steering, DistinctAnglesGiveDistinctVectors) {
  const auto a = steering_vector(40.0, 4, 0.08, 0.33);
  const auto b = steering_vector(80.0, 4, 0.08, 0.33);
  double diff = 0.0;
  for (std::size_t n = 0; n < 4; ++n) diff += std::abs(a[n] - b[n]);
  EXPECT_GT(diff, 0.5);
}

}  // namespace
}  // namespace m2ai::rf
