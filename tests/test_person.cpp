#include "sim/person.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m2ai::sim {
namespace {

BodyParams fixed_body() {
  BodyParams p;
  p.height_m = 1.70;
  p.body_radius_m = 0.20;
  p.arm_length_m = 0.62;
  p.speed_scale = 1.0;
  p.amplitude_scale = 1.0;
  p.phase_offset = 0.0;
  return p;
}

MotionSpec motion(GaitType g, TorsoType t = TorsoType::kNone,
                  LimbType l = LimbType::kNone) {
  MotionSpec m;
  m.gait = g;
  m.torso = t;
  m.limb = l;
  return m;
}

TEST(Person, StandStaysNearStart) {
  Person p(fixed_body(), {3.0, 4.0}, 0.0, motion(GaitType::kStand));
  for (double t = 0.0; t < 20.0; t += 0.5) {
    EXPECT_LT(rf::distance(p.center_at(t), {3.0, 4.0}), 0.10);
  }
}

TEST(Person, WalkLineOscillatesAlongHeading) {
  MotionSpec m = motion(GaitType::kWalkLine);
  m.gait_freq_hz = 0.25;
  m.gait_amplitude_m = 1.0;
  Person p(fixed_body(), {0.0, 0.0}, 0.0, m);  // heading +x
  double max_x = 0.0, max_y = 0.0;
  for (double t = 0.0; t < 8.0; t += 0.05) {
    max_x = std::max(max_x, std::abs(p.center_at(t).x));
    max_y = std::max(max_y, std::abs(p.center_at(t).y));
  }
  EXPECT_NEAR(max_x, 1.0, 0.05);
  EXPECT_NEAR(max_y, 0.0, 1e-9);
}

TEST(Person, WalkCircleKeepsOrbitRadius) {
  MotionSpec m = motion(GaitType::kWalkCircle);
  m.gait_freq_hz = 0.2;
  m.gait_amplitude_m = 1.0;
  Person p(fixed_body(), {0.0, 0.0}, 0.0, m);
  const rf::Vec2 orbit_center{1.0, 0.0};
  for (double t = 0.0; t < 10.0; t += 0.25) {
    EXPECT_NEAR(rf::distance(p.center_at(t), orbit_center), 1.0, 1e-9);
  }
}

TEST(Person, TagHeightsOrderedUprights) {
  Person p(fixed_body(), {0.0, 0.0}, 0.0, motion(GaitType::kStand));
  const Vec3 hand = p.tag_position(BodySite::kHand, 0.0);
  const Vec3 arm = p.tag_position(BodySite::kArm, 0.0);
  const Vec3 shoulder = p.tag_position(BodySite::kShoulder, 0.0);
  EXPECT_LT(hand.z, arm.z);
  EXPECT_LT(arm.z, shoulder.z);
  // Paper: tags sit between 1.0 and 1.5 m for typical adults.
  EXPECT_GT(hand.z, 0.5);
  EXPECT_LT(shoulder.z, 1.6);
}

TEST(Person, SitDownLowersAllTags) {
  Person p(fixed_body(), {0.0, 0.0}, 0.0, motion(GaitType::kSitDown));
  const double before = p.tag_position(BodySite::kShoulder, 0.0).z;
  const double after = p.tag_position(BodySite::kShoulder, 6.0).z;
  EXPECT_LT(after, before - 0.3);
}

TEST(Person, SquatIsPeriodic) {
  MotionSpec m = motion(GaitType::kStand, TorsoType::kSquat);
  m.torso_freq_hz = 0.5;  // 2 s period
  Person p(fixed_body(), {0.0, 0.0}, 0.0, m);
  const double z0 = p.tag_position(BodySite::kShoulder, 0.0).z;
  const double z_mid = p.tag_position(BodySite::kShoulder, 1.0).z;  // mid squat
  const double z_full = p.tag_position(BodySite::kShoulder, 2.0).z; // back up
  EXPECT_LT(z_mid, z0 - 0.15);
  EXPECT_NEAR(z_full, z0, 0.02);
}

TEST(Person, JumpLiftsBodyOnlyUpward) {
  MotionSpec m = motion(GaitType::kStand, TorsoType::kJump);
  m.torso_freq_hz = 0.5;
  Person p(fixed_body(), {0.0, 0.0}, 0.0, m);
  const double base = p.tag_position(BodySite::kShoulder, 0.0).z;
  double min_z = 1e9, max_z = -1e9;
  for (double t = 0.0; t < 4.0; t += 0.02) {
    const double z = p.tag_position(BodySite::kShoulder, t).z;
    min_z = std::min(min_z, z);
    max_z = std::max(max_z, z);
  }
  EXPECT_GT(max_z, base + 0.2);       // hops up
  EXPECT_GT(min_z, base - 0.25);      // only the crouch dips, bounded
}

TEST(Person, BendMovesShoulderForwardAndDown) {
  MotionSpec m = motion(GaitType::kStand, TorsoType::kBend);
  m.torso_freq_hz = 0.25;  // bend peaks at t = 2 s
  Person p(fixed_body(), {0.0, 0.0}, 0.0, m);  // heading +x
  const Vec3 up = p.tag_position(BodySite::kShoulder, 0.0);
  const Vec3 bent = p.tag_position(BodySite::kShoulder, 2.0);
  EXPECT_GT(bent.x, up.x + 0.1);  // forward along heading
  EXPECT_LT(bent.z, up.z - 0.1);  // down
}

TEST(Person, WaveMovesHandMoreThanShoulder) {
  MotionSpec m = motion(GaitType::kStand, TorsoType::kNone, LimbType::kWave);
  m.limb_freq_hz = 1.0;
  Person p(fixed_body(), {0.0, 0.0}, 0.0, m);
  auto travel = [&](BodySite site) {
    double mx = 0.0;
    const Vec3 base = p.tag_position(site, 0.0);
    for (double t = 0.0; t < 2.0; t += 0.02) {
      const Vec3 v = p.tag_position(site, t);
      mx = std::max(mx, std::hypot(v.x - base.x, v.y - base.y, v.z - base.z));
    }
    return mx;
  };
  EXPECT_GT(travel(BodySite::kHand), 3.0 * travel(BodySite::kShoulder));
}

TEST(Person, TagGainBounds) {
  for (auto torso : {TorsoType::kNone, TorsoType::kSquat, TorsoType::kJump,
                     TorsoType::kBend, TorsoType::kTurn}) {
    MotionSpec m = motion(GaitType::kStand, torso, LimbType::kWave);
    Person p(fixed_body(), {0.0, 0.0}, 0.0, m);
    for (double t = 0.0; t < 6.0; t += 0.1) {
      for (auto site : {BodySite::kHand, BodySite::kArm, BodySite::kShoulder}) {
        const double g = p.tag_gain(site, t, {5.0, 0.0});
        EXPECT_GE(g, 0.05);
        EXPECT_LE(g, 1.0);
      }
    }
  }
}

TEST(Person, FacingReceiverGainsMoreThanFacingAway) {
  Person p(fixed_body(), {0.0, 0.0}, 0.0, motion(GaitType::kStand));  // faces +x
  const double front = p.tag_gain(BodySite::kShoulder, 0.0, {5.0, 0.0});
  const double back = p.tag_gain(BodySite::kShoulder, 0.0, {-5.0, 0.0});
  EXPECT_GT(front, back + 0.3);
}

TEST(Person, TurnSweepsGainPeriodically) {
  MotionSpec m = motion(GaitType::kStand, TorsoType::kTurn);
  m.torso_freq_hz = 0.25;  // 4 s per revolution
  Person p(fixed_body(), {0.0, 0.0}, 0.0, m);
  const double g0 = p.tag_gain(BodySite::kShoulder, 0.0, {5.0, 0.0});
  const double g_half = p.tag_gain(BodySite::kShoulder, 2.0, {5.0, 0.0});
  const double g_full = p.tag_gain(BodySite::kShoulder, 4.0, {5.0, 0.0});
  EXPECT_LT(g_half, g0 - 0.3);     // facing away mid-revolution
  EXPECT_NEAR(g_full, g0, 0.05);   // back to facing
}

TEST(BodyParams, RandomVolunteersWithinRanges) {
  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const BodyParams p = BodyParams::random_volunteer(rng);
    EXPECT_GE(p.height_m, 1.55);
    EXPECT_LE(p.height_m, 1.90);
    EXPECT_GT(p.body_radius_m, 0.1);
    EXPECT_LT(p.body_radius_m, 0.3);
    EXPECT_GT(p.speed_scale, 0.8);
    EXPECT_LT(p.speed_scale, 1.25);
  }
}

}  // namespace
}  // namespace m2ai::sim
