#include "exp/fingerprint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace m2ai::exp {
namespace {

TEST(Fingerprinter, HexIs32LowercaseHexChars) {
  Fingerprinter fp;
  fp.field("x", 1);
  const std::string hex = fp.hex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(Fingerprinter, FieldNameAndOrderMatter) {
  Fingerprinter a, b, c;
  a.field("first", 1);
  a.field("second", 2);
  b.field("first", 2);
  b.field("second", 1);
  c.field("renamed", 1);
  c.field("second", 2);
  EXPECT_NE(a.hex(), b.hex());
  EXPECT_NE(a.hex(), c.hex());
}

TEST(Fingerprinter, TypeTagSeparatesEqualBitPatterns) {
  Fingerprinter as_int, as_uint;
  as_int.field("v", std::int64_t{1});
  as_uint.field("v", std::uint64_t{1});
  EXPECT_NE(as_int.hex(), as_uint.hex());
}

TEST(Fingerprinter, StringBoundariesCannotShift) {
  Fingerprinter a, b;
  a.field("ab", std::string_view("c"));
  b.field("a", std::string_view("bc"));
  EXPECT_NE(a.hex(), b.hex());
}

TEST(DatasetFingerprint, EqualConfigsHashEqual) {
  const core::ExperimentConfig a;
  const core::ExperimentConfig b;
  EXPECT_EQ(dataset_fingerprint(a), dataset_fingerprint(b));
}

TEST(DatasetFingerprint, EverySingleFieldPerturbationChangesTheHash) {
  using Mutation = std::function<void(core::ExperimentConfig&)>;
  const std::vector<std::pair<const char*, Mutation>> mutations = {
      {"environment",
       [](auto& c) { c.pipeline.environment = core::EnvironmentKind::kHall; }},
      {"num_persons", [](auto& c) { c.pipeline.num_persons = 3; }},
      {"tags_per_person", [](auto& c) { c.pipeline.tags_per_person = 1; }},
      {"distance_m", [](auto& c) { c.pipeline.distance_m = 2.0; }},
      {"num_antennas", [](auto& c) { c.pipeline.num_antennas = 3; }},
      {"frequency_hopping", [](auto& c) { c.pipeline.frequency_hopping = false; }},
      {"phase_calibration", [](auto& c) { c.pipeline.phase_calibration = false; }},
      {"bootstrap_sec", [](auto& c) { c.pipeline.bootstrap_sec = 10.0; }},
      {"feature_mode",
       [](auto& c) { c.pipeline.feature_mode = core::FeatureMode::kFftOnly; }},
      {"cov.forward_backward",
       [](auto& c) { c.pipeline.covariance.forward_backward = false; }},
      {"cov.smoothing_subarray",
       [](auto& c) { c.pipeline.covariance.smoothing_subarray = 3; }},
      {"cov.diagonal_loading",
       [](auto& c) { c.pipeline.covariance.diagonal_loading *= 2.0; }},
      {"music_num_sources", [](auto& c) { c.pipeline.music_num_sources = 3; }},
      {"window_sec", [](auto& c) { c.pipeline.window_sec = 0.5; }},
      {"windows_per_sample", [](auto& c) { c.pipeline.windows_per_sample = 24; }},
      {"seed", [](auto& c) { c.seed += 1; }},
      {"samples_per_class", [](auto& c) { c.samples_per_class += 1; }},
      {"train_fraction", [](auto& c) { c.train_fraction = 0.75; }},
  };

  const core::ExperimentConfig base;
  const std::string base_hash = dataset_fingerprint(base);
  std::set<std::string> seen = {base_hash};
  for (const auto& [name, mutate] : mutations) {
    core::ExperimentConfig mutated = base;
    mutate(mutated);
    const std::string hash = dataset_fingerprint(mutated);
    EXPECT_NE(hash, base_hash) << "perturbing " << name << " did not change the hash";
    // And no two perturbations collide with each other either.
    EXPECT_TRUE(seen.insert(hash).second) << name << " collided with another mutation";
  }
}

TEST(DatasetFingerprint, FloatsThatPrintIdenticallyHashApart) {
  // 4.0 and its next representable neighbour agree to 15 significant
  // digits under %g — a decimal-rendered key would alias them. The
  // bit-pattern hash must not.
  core::ExperimentConfig a, b;
  a.pipeline.distance_m = 4.0;
  b.pipeline.distance_m = std::nextafter(4.0, 5.0);
  char ra[64], rb[64];
  std::snprintf(ra, sizeof(ra), "%.6g", a.pipeline.distance_m);
  std::snprintf(rb, sizeof(rb), "%.6g", b.pipeline.distance_m);
  ASSERT_STREQ(ra, rb);  // precondition: they really do print identically
  EXPECT_NE(dataset_fingerprint(a), dataset_fingerprint(b));
}

TEST(DatasetFingerprint, ModelAndTrainFieldsAreExcluded) {
  // The dataset is a pure function of the pipeline + seed: architecture and
  // epoch sweeps over one dataset must share a cache entry.
  core::ExperimentConfig a, b;
  b.model.arch = core::NetworkArch::kCnnOnly;
  b.model.lstm_hidden = 64;
  b.train.epochs = 3;
  b.train.learning_rate = 1.0;
  EXPECT_EQ(dataset_fingerprint(a), dataset_fingerprint(b));
}

}  // namespace
}  // namespace m2ai::exp
