// The deterministic parallel layer: pool mechanics, exception propagation,
// nesting, and the headline guarantee — parallel results are bitwise
// identical to the serial path at any thread count, for raw parallel_map,
// full pipeline samples, dataset generation, and evaluation.
#include "par/parallel_for.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"

namespace m2ai {
namespace {

// RAII thread-count override so a failing test cannot leak its setting.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(par::num_threads()) {
    par::set_num_threads(n);
  }
  ~ScopedThreads() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    par::ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    par::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // No wait_idle: graceful shutdown must still run every queued task.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SizeClampedToOne) {
  par::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ScopedThreads t(4);
  std::vector<std::atomic<int>> hits(997);
  par::parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  ScopedThreads t(4);
  bool ran = false;
  par::parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesFirstException) {
  ScopedThreads t(4);
  EXPECT_THROW(
      par::parallel_for(64,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionOnSerialPathPropagates) {
  ScopedThreads t(1);
  EXPECT_THROW(
      par::parallel_for(4, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(ParallelFor, NestedRegionsRunSeriallyAndCover) {
  ScopedThreads t(4);
  std::vector<std::atomic<int>> hits(64);
  par::parallel_for(8, [&](std::size_t outer) {
    EXPECT_TRUE(par::in_parallel_region());
    par::parallel_for(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(par::in_parallel_region());
}

TEST(ParallelFor, ThreadCountConfigRoundTrips) {
  ScopedThreads t(3);
  EXPECT_EQ(par::num_threads(), 3);
  par::set_num_threads(0);
  EXPECT_EQ(par::num_threads(), par::hardware_threads());
  EXPECT_GE(par::hardware_threads(), 1);
}

TEST(ParallelMap, MatchesSerialMap) {
  std::vector<double> serial;
  {
    ScopedThreads t(1);
    serial = par::parallel_map<double>(
        200, [](std::size_t i) { return std::sin(static_cast<double>(i)) * 3.25; });
  }
  ScopedThreads t(5);
  const auto parallel = par::parallel_map<double>(
      200, [](std::size_t i) { return std::sin(static_cast<double>(i)) * 3.25; });
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]);  // bitwise, not approximately
  }
}

TEST(ParallelChunks, CoversEveryIndexExactlyOnceWithUnevenChunks) {
  ScopedThreads t(4);
  std::vector<std::atomic<int>> hits(103);  // 103 % 4 != 0: last chunk is short
  const int workers = par::chunk_workers(hits.size());
  EXPECT_EQ(workers, 4);
  par::parallel_chunks(hits.size(), workers,
                       [&](int w, std::size_t begin, std::size_t end) {
                         EXPECT_GE(w, 0);
                         EXPECT_LT(w, workers);
                         EXPECT_LT(begin, end);
                         for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelChunks, WorkerCountClampedToItems) {
  ScopedThreads t(8);
  EXPECT_EQ(par::chunk_workers(3), 3);
  EXPECT_EQ(par::chunk_workers(0), 0);
  std::vector<int> seen_workers;
  std::mutex mu;
  par::parallel_chunks(3, par::chunk_workers(3),
                       [&](int w, std::size_t, std::size_t) {
                         std::lock_guard<std::mutex> lock(mu);
                         seen_workers.push_back(w);
                       });
  EXPECT_EQ(seen_workers.size(), 3u);
}

TEST(ParallelChunks, NestedRegionFallsBackToSingleWorker) {
  ScopedThreads t(4);
  par::parallel_for(2, [&](std::size_t) {
    EXPECT_EQ(par::chunk_workers(16), 1);  // nested: serial inline
  });
  EXPECT_EQ(par::chunk_workers(16), 4);
}

TEST(ReduceInOrder, FoldsStrictlyInIndexOrder) {
  ScopedThreads t(4);
  // Partials computed in any scheduling order; the fold must still see
  // index order — the float sum below is order-sensitive by construction.
  auto partials = par::parallel_map<double>(64, [](std::size_t i) {
    return (i % 2 == 0 ? 1.0 : -1.0) * std::pow(1.1, static_cast<double>(i % 13));
  });
  double folded = 0.0;
  std::size_t expect_next = 0;
  par::reduce_in_order(partials, [&](std::size_t i, double v) {
    EXPECT_EQ(i, expect_next++);
    folded += v;
  });
  double serial = 0.0;
  for (std::size_t i = 0; i < partials.size(); ++i) serial += partials[i];
  EXPECT_EQ(folded, serial);  // bitwise: same order, same rounding
}

TEST(ParallelMapSeeded, ForkOrderIndependentOfThreadCount) {
  auto run = [](int threads) {
    ScopedThreads t(threads);
    util::Rng base(42);
    return par::parallel_map_seeded<std::uint64_t>(
        64, base, [](std::size_t, util::Rng& rng) { return rng.next_u64(); });
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) EXPECT_EQ(one[i], four[i]);
}

// Hammer the metrics registry from many threads while enabled — the CI
// TSan job runs this to catch races in obs under contention.
TEST(ParallelFor, ObsRegistryIsRaceFreeUnderContention) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  {
    ScopedThreads t(8);
    par::parallel_for(512, [&](std::size_t i) {
      obs::registry().counter("par_test.counter").add(1);
      obs::registry().gauge("par_test.gauge").set(static_cast<double>(i));
      obs::registry().histogram("par_test.hist").record(static_cast<double>(i));
    });
  }
  EXPECT_GE(obs::registry().counter("par_test.counter").value(), 512u);
  EXPECT_EQ(obs::registry().histogram("par_test.hist").snapshot().count, 512u);
  obs::set_enabled(was_enabled);
}

// ---------------------------------------------------------------------------
// End-to-end determinism through the wired layers.

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig config;
  config.samples_per_class = 2;
  config.pipeline.windows_per_sample = 6;
  config.pipeline.bootstrap_sec = 4.0;
  config.train.epochs = 1;
  return config;
}

void expect_frames_equal(const core::FrameSequence& a, const core::FrameSequence& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    ASSERT_EQ(a[w].has_pseudo, b[w].has_pseudo);
    ASSERT_EQ(a[w].has_aux, b[w].has_aux);
    if (a[w].has_pseudo) {
      ASSERT_EQ(a[w].pseudo.size(), b[w].pseudo.size());
      for (std::size_t i = 0; i < a[w].pseudo.size(); ++i) {
        ASSERT_EQ(a[w].pseudo[i], b[w].pseudo[i]) << "window " << w << " bin " << i;
      }
    }
    if (a[w].has_aux) {
      ASSERT_EQ(a[w].aux.size(), b[w].aux.size());
      for (std::size_t i = 0; i < a[w].aux.size(); ++i) {
        ASSERT_EQ(a[w].aux[i], b[w].aux[i]) << "window " << w << " bin " << i;
      }
    }
  }
}

TEST(ParallelDeterminism, PipelineSampleIsThreadCountInvariant) {
  const core::PipelineConfig config = tiny_config().pipeline;
  core::Sample serial, parallel;
  {
    ScopedThreads t(1);
    core::Pipeline pipeline(config, 77);
    serial = pipeline.simulate_sample(3);
  }
  {
    ScopedThreads t(4);
    core::Pipeline pipeline(config, 77);
    parallel = pipeline.simulate_sample(3);
  }
  EXPECT_EQ(serial.label, parallel.label);
  expect_frames_equal(serial.frames, parallel.frames);
}

TEST(ParallelDeterminism, DatasetGenerationIsThreadCountInvariant) {
  const core::ExperimentConfig config = tiny_config();
  core::DataSplit serial, parallel;
  {
    ScopedThreads t(1);
    serial = core::generate_dataset(config);
  }
  {
    ScopedThreads t(4);
    parallel = core::generate_dataset(config);
  }
  ASSERT_EQ(serial.train.size(), parallel.train.size());
  ASSERT_EQ(serial.test.size(), parallel.test.size());
  for (std::size_t i = 0; i < serial.train.size(); ++i) {
    ASSERT_EQ(serial.train[i].label, parallel.train[i].label) << "train " << i;
    expect_frames_equal(serial.train[i].frames, parallel.train[i].frames);
  }
  for (std::size_t i = 0; i < serial.test.size(); ++i) {
    ASSERT_EQ(serial.test[i].label, parallel.test[i].label) << "test " << i;
    expect_frames_equal(serial.test[i].frames, parallel.test[i].frames);
  }
}

TEST(ParallelDeterminism, EvaluationIsThreadCountInvariant) {
  const core::ExperimentConfig config = tiny_config();
  core::DataSplit split;
  {
    ScopedThreads t(1);
    split = core::generate_dataset(config);
  }
  core::ModelConfig model;
  model.lstm_hidden = 8;
  model.merge_features = 12;
  model.dropout = 0.0;
  core::M2AINetwork network(model, config.pipeline.feature_mode,
                            config.pipeline.num_persons * config.pipeline.tags_per_person,
                            config.pipeline.num_antennas, split.num_classes);
  core::ConfusionMatrix serial(1), parallel(1);
  {
    ScopedThreads t(1);
    serial = core::evaluate(network, split.test);
  }
  {
    ScopedThreads t(4);
    parallel = core::evaluate(network, split.test);
  }
  ASSERT_EQ(serial.total(), parallel.total());
  // evaluate() sizes the matrix by the max label present in `test`, which
  // can be < num_classes on this tiny split — stay inside that range.
  int present = 1;
  for (const core::Sample& s : split.test) present = std::max(present, s.label + 1);
  for (int a = 0; a < present; ++a) {
    for (int p = 0; p < present; ++p) {
      EXPECT_EQ(serial.count(a, p), parallel.count(a, p)) << a << "," << p;
    }
  }
}

TEST(ParallelDeterminism, NetworkCloneReproducesPredictions) {
  const core::ExperimentConfig config = tiny_config();
  core::DataSplit split;
  {
    ScopedThreads t(1);
    split = core::generate_dataset(config);
  }
  core::ModelConfig model;
  model.lstm_hidden = 8;
  model.merge_features = 12;
  core::M2AINetwork network(model, config.pipeline.feature_mode,
                            config.pipeline.num_persons * config.pipeline.tags_per_person,
                            config.pipeline.num_antennas, split.num_classes);
  const auto clone = network.clone();
  ASSERT_EQ(clone->num_parameters(), network.num_parameters());
  for (const core::Sample& s : split.test) {
    EXPECT_EQ(network.predict(s.frames), clone->predict(s.frames));
  }
}

}  // namespace
}  // namespace m2ai
