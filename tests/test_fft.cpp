#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/periodogram.hpp"
#include "util/rng.hpp"

namespace m2ai::dsp {
namespace {

std::vector<cdouble> random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<cdouble> x(n);
  for (auto& v : x) v = cdouble{rng.normal(), rng.normal()};
  return x;
}

TEST(Fft, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(8), 8u);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cdouble> x(8, cdouble{0.0, 0.0});
  x[0] = cdouble{1.0, 0.0};
  const auto spec = fft(x);
  for (const auto& v : spec) EXPECT_NEAR(std::abs(v - cdouble(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Fft, SinusoidConcentratesInOneBin) {
  const std::size_t n = 64;
  const int k0 = 5;
  std::vector<cdouble> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::polar(1.0, 2.0 * M_PI * k0 * static_cast<double>(t) / static_cast<double>(n));
  }
  const auto spec = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == static_cast<std::size_t>(k0)) {
      EXPECT_NEAR(std::abs(spec[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  const auto x = random_signal(128, 7);
  const auto back = fft(fft(x, false), true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, RadixTwoRejectsOddSize) {
  std::vector<cdouble> x(6);
  EXPECT_THROW(fft_radix2(x), std::invalid_argument);
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

// Property: fft must agree with the direct O(N^2) DFT, for power-of-two and
// Bluestein sizes alike.
TEST_P(FftSizes, MatchesDirectDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 1000 + n);
  const auto fast = fft(x);
  const auto slow = dft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-8 * static_cast<double>(n));
  }
}

// Property: Parseval's theorem (cited via Eq. 16 context in the paper) —
// sum |x|^2 == (1/N) sum |X|^2.
TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 2000 + n);
  const auto spec = fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * std::max(1.0, time_energy));
}

TEST_P(FftSizes, InverseRoundTrip) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 3000 + n);
  const auto back = fft(fft(x, false), true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-9 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 17, 31, 32,
                                           45, 64, 100, 128, 180));

// Independent O(n^2) reference, written out longhand on purpose — it shares
// no code with dsp::fft/dsp::dft, so a Bluestein regression cannot cancel
// out of both sides of the comparison.
std::vector<cdouble> naive_dft(const std::vector<cdouble>& x) {
  const std::size_t n = x.size();
  std::vector<cdouble> out(n, cdouble{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      out[k] += x[t] * std::polar(1.0, angle);
    }
  }
  return out;
}

// The Fig. 14 antenna sweep feeds the periodogram snapshots of 3..7 antennas
// — all non-power-of-two sizes except 4, so every bin goes through the
// Bluestein path. Check each bin against the naive reference and the total
// energy against Parseval (P(k) = |Y(k)|^2 / N sums to sum |x|^2).
class PeriodogramAntennaSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeriodogramAntennaSizes, MatchesNaiveDftEnergy) {
  const std::size_t n = GetParam();
  const auto snapshot = random_signal(n, 4000 + n);
  const auto p = periodogram(snapshot);
  const auto ref = naive_dft(snapshot);
  ASSERT_EQ(p.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(p[k], std::norm(ref[k]) / static_cast<double>(n), 1e-9)
        << "bin " << k << " of n=" << n;
  }
  double signal_energy = 0.0, periodogram_energy = 0.0;
  for (const auto& v : snapshot) signal_energy += std::norm(v);
  for (const double v : p) periodogram_energy += v;
  EXPECT_NEAR(periodogram_energy, signal_energy, 1e-9 * std::max(1.0, signal_energy));
}

TEST_P(PeriodogramAntennaSizes, BartlettAverageMatchesNaiveMean) {
  const std::size_t n = GetParam();
  std::vector<std::vector<cdouble>> snapshots;
  for (std::uint64_t s = 0; s < 5; ++s) {
    snapshots.push_back(random_signal(n, 5000 + 10 * n + s));
  }
  const auto averaged = averaged_periodogram(snapshots);
  ASSERT_EQ(averaged.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    double mean = 0.0;
    for (const auto& snap : snapshots) {
      mean += std::norm(naive_dft(snap)[k]) / static_cast<double>(n);
    }
    mean /= static_cast<double>(snapshots.size());
    EXPECT_NEAR(averaged[k], mean, 1e-9) << "bin " << k << " of n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AntennaCounts, PeriodogramAntennaSizes,
                         ::testing::Values(3, 5, 6, 7));

// The radix-2 butterflies now read twiddles from a per-size cached table.
// The table is built with the same incremental recurrence (w *= wl) the
// in-loop computation used, so the transform must stay BITWISE identical
// to the uncached implementation — this reference reproduces that original
// loop verbatim.
std::vector<cdouble> uncached_radix2(std::vector<cdouble> data, bool inverse) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const cdouble wl = std::polar(1.0, ang);
    for (std::size_t i = 0; i < n; i += len) {
      cdouble w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble u = data[i + k];
        const cdouble v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
  return data;
}

class FftTwiddleCache : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftTwiddleCache, BitwiseIdenticalToUncachedRecurrence) {
  const std::size_t n = GetParam();
  for (const bool inverse : {false, true}) {
    const auto x = random_signal(n, 6000 + n + (inverse ? 1 : 0));
    const auto reference = uncached_radix2(x, inverse);
    // Twice: a cold cache (first call builds the table) and a warm one.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<cdouble> cached = x;
      fft_radix2(cached, inverse);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(cached[i].real(), reference[i].real())
            << "n=" << n << " inverse=" << inverse << " bin " << i;
        ASSERT_EQ(cached[i].imag(), reference[i].imag())
            << "n=" << n << " inverse=" << inverse << " bin " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftTwiddleCache,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

TEST(Dft, InverseRoundTrip) {
  const auto x = random_signal(9, 11);
  const auto back = dft(dft(x, false), true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, EmptyInput) { EXPECT_TRUE(fft({}).empty()); }

}  // namespace
}  // namespace m2ai::dsp
