#include "dsp/periodogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace m2ai::dsp {
namespace {

TEST(Periodogram, FlatForImpulse) {
  std::vector<cdouble> snap{{1, 0}, {0, 0}, {0, 0}, {0, 0}};
  const auto p = periodogram(snap);
  ASSERT_EQ(p.size(), 4u);
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(Periodogram, ConcentratedForSpatialTone) {
  const std::size_t n = 8;
  std::vector<cdouble> snap(n);
  for (std::size_t i = 0; i < n; ++i) {
    snap[i] = std::polar(1.0, 2.0 * M_PI * 3.0 * static_cast<double>(i) / 8.0);
  }
  const auto p = periodogram(snap);
  EXPECT_NEAR(p[3], 8.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != 3) EXPECT_NEAR(p[k], 0.0, 1e-9);
  }
}

TEST(Periodogram, ParsevalPowerConservation) {
  util::Rng rng(5);
  std::vector<cdouble> snap(16);
  for (auto& v : snap) v = cdouble{rng.normal(), rng.normal()};
  const auto p = periodogram(snap);
  double time_power = 0.0, freq_power = 0.0;
  for (const auto& v : snap) time_power += std::norm(v);
  for (double v : p) freq_power += v;
  EXPECT_NEAR(freq_power, time_power, 1e-9);
}

TEST(Periodogram, AveragedReducesVariance) {
  util::Rng rng(6);
  auto make = [&rng]() {
    std::vector<cdouble> s(4);
    for (auto& v : s) v = cdouble{rng.normal(), rng.normal()};
    return s;
  };
  std::vector<std::vector<cdouble>> snaps;
  for (int i = 0; i < 200; ++i) snaps.push_back(make());
  const auto avg = averaged_periodogram(snaps);
  // Expected power per bin for unit-variance complex noise: 2.0.
  for (double v : avg) EXPECT_NEAR(v, 2.0, 0.4);
}

TEST(Periodogram, AveragedMatchesMeanOfIndividuals) {
  util::Rng rng(7);
  std::vector<std::vector<cdouble>> snaps(5, std::vector<cdouble>(4));
  for (auto& s : snaps) {
    for (auto& v : s) v = cdouble{rng.normal(), rng.normal()};
  }
  const auto avg = averaged_periodogram(snaps);
  std::vector<double> manual(4, 0.0);
  for (const auto& s : snaps) {
    const auto p = periodogram(s);
    for (std::size_t k = 0; k < 4; ++k) manual[k] += p[k] / 5.0;
  }
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(avg[k], manual[k], 1e-12);
}

TEST(Periodogram, TimeSeriesPeakAtSignalFrequency) {
  // 2 Hz tone sampled at 32 Hz for 1 s -> bin 2 of a 32-point series.
  std::vector<double> series(32);
  for (int t = 0; t < 32; ++t) {
    series[static_cast<std::size_t>(t)] = std::sin(2.0 * M_PI * 2.0 * t / 32.0);
  }
  const auto p = time_periodogram(series);
  ASSERT_EQ(p.size(), 17u);
  int best = 1;
  for (int k = 1; k < 17; ++k) {
    if (p[static_cast<std::size_t>(k)] > p[static_cast<std::size_t>(best)]) best = k;
  }
  EXPECT_EQ(best, 2);
}

TEST(Periodogram, RejectsEmpty) {
  EXPECT_THROW(periodogram({}), std::invalid_argument);
  EXPECT_THROW(averaged_periodogram({}), std::invalid_argument);
  EXPECT_THROW(time_periodogram({}), std::invalid_argument);
}

}  // namespace
}  // namespace m2ai::dsp
