#include <gtest/gtest.h>

#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"

namespace m2ai::ml {
namespace {

Dataset tiny_split_problem() {
  // One feature separates the classes at x = 0.5.
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.add({static_cast<float>(i) / 20.0f}, i < 10 ? 0 : 1);
  }
  return data;
}

TEST(DecisionTree, FindsObviousThreshold) {
  DecisionTree tree;
  tree.fit(tiny_split_problem());
  EXPECT_EQ(tree.predict({0.1f}), 0);
  EXPECT_EQ(tree.predict({0.9f}), 1);
  EXPECT_EQ(tree.depth(), 1);  // a single split suffices
}

TEST(DecisionTree, DepthLimitRespected) {
  util::Rng rng(1);
  Dataset data;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> x{static_cast<float>(rng.uniform()),
                         static_cast<float>(rng.uniform())};
    const int label = (x[0] > 0.5f) ^ (x[1] > 0.5f) ? 1 : 0;  // needs depth 2
    data.add(std::move(x), label);
  }
  TreeOptions opts;
  opts.max_depth = 1;
  DecisionTree stump(opts);
  stump.fit(data);
  EXPECT_LE(stump.depth(), 1);

  TreeOptions deep;
  deep.max_depth = 4;
  DecisionTree tree(deep);
  tree.fit(data);
  EXPECT_GT(tree.accuracy(data), 0.95);
}

TEST(DecisionTree, WeightedFitFollowsWeights) {
  // Two conflicting points; weights decide the leaf label.
  Dataset data;
  data.add({0.0f}, 0);
  data.add({0.0f}, 1);
  DecisionTree tree;
  tree.fit_weighted(data, {0.9, 0.1});
  EXPECT_EQ(tree.predict({0.0f}), 0);
  DecisionTree tree2;
  tree2.fit_weighted(data, {0.1, 0.9});
  EXPECT_EQ(tree2.predict({0.0f}), 1);
}

TEST(DecisionTree, WeightCountMismatchThrows) {
  Dataset data = tiny_split_problem();
  DecisionTree tree;
  EXPECT_THROW(tree.fit_weighted(data, {1.0}), std::invalid_argument);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict({0.0f}), std::logic_error);
}

TEST(DecisionTree, ConstantFeaturesYieldLeaf) {
  Dataset data;
  data.add({1.0f}, 0);
  data.add({1.0f}, 0);
  data.add({1.0f}, 1);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_EQ(tree.predict({1.0f}), 0);  // majority
}

TEST(RandomForest, BeatsSingleStumpOnXor) {
  util::Rng rng(2);
  Dataset train, test;
  for (int i = 0; i < 400; ++i) {
    std::vector<float> x{static_cast<float>(rng.uniform(-1, 1)),
                         static_cast<float>(rng.uniform(-1, 1))};
    const int label = (x[0] > 0) ^ (x[1] > 0) ? 1 : 0;
    (i < 300 ? train : test).add(std::move(x), label);
  }
  TreeOptions stump_opts;
  stump_opts.max_depth = 1;
  DecisionTree stump(stump_opts);
  stump.fit(train);

  RandomForest forest(25, 8, 3);
  forest.fit(train);
  EXPECT_GT(forest.accuracy(test), stump.accuracy(test) + 0.2);
  EXPECT_GT(forest.accuracy(test), 0.9);
}

TEST(AdaBoost, BoostsStumpsBeyondSingleStump) {
  util::Rng rng(4);
  Dataset train, test;
  // Diagonal boundary: x0 + x1 > 0 -> needs many axis-aligned stumps.
  for (int i = 0; i < 500; ++i) {
    std::vector<float> x{static_cast<float>(rng.uniform(-1, 1)),
                         static_cast<float>(rng.uniform(-1, 1))};
    const int label = (x[0] + x[1] > 0) ? 1 : 0;
    (i < 350 ? train : test).add(std::move(x), label);
  }
  TreeOptions stump_opts;
  stump_opts.max_depth = 1;
  DecisionTree stump(stump_opts);
  stump.fit(train);

  AdaBoost boost(60, 1, 5);
  boost.fit(train);
  EXPECT_GT(boost.accuracy(test), stump.accuracy(test) + 0.05);
  EXPECT_GT(boost.accuracy(test), 0.9);
}

TEST(AdaBoost, HandlesPerfectWeakLearner) {
  AdaBoost boost(10, 3, 6);
  boost.fit(tiny_split_problem());  // stump is perfect -> early stop path
  EXPECT_EQ(boost.predict({0.1f}), 0);
  EXPECT_EQ(boost.predict({0.9f}), 1);
}

}  // namespace
}  // namespace m2ai::ml
